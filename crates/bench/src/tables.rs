//! The Tables 1/2 report: data collection and rendering.
//!
//! [`collect`] drives the [`Pipeline`] builder over every corpus entry
//! in the same four flavors the golden suite pins — default, with the
//! Section 4 reduce stage, and (for partial entries) the Section 3
//! expansion extremes plus the ranked selection and its reduce
//! composition — against one shared [`SynthCache`], timing each row.
//! After the first pass it *replays* every successful run against the
//! cache, so the report also demonstrates the O(1) repeated-synthesis
//! path and its hit counters.
//!
//! [`render_text`] formats the classic column report (now with a
//! per-row `ms` column and a cache footer); [`render_json`] emits the
//! same numbers machine-readably — the `BENCH_tables.json`
//! perf-trajectory baseline at the repository root is its output.

use std::time::Instant;

use reshuffle::{
    ExpansionOptions, MoveStep, Pipeline, PipelineOptions, ReduceOptions, Stg, SynthCache,
    Synthesis,
};
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, csc::analyze_csc, StateGraph};
use reshuffle_synth::literal_estimate;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

use crate::examples;
use crate::json::Json;

/// One synthesized path of a row: literals, cycle time, state signals
/// inserted, serializing moves applied, expansion choices committed.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Literal estimate of the synthesized state graph.
    pub lits: u32,
    /// Steady-state cycle time under the reduce stage's delay model.
    pub cycle: f64,
    /// State signals inserted to resolve CSC.
    pub inserted: usize,
    /// Serializing moves applied.
    pub moves: usize,
    /// Reshuffling ordering choices committed.
    pub choices: usize,
}

/// One collected corpus row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Example name.
    pub name: &'static str,
    /// States of the specification's graph.
    pub states: usize,
    /// CSC conflicts of the specification.
    pub csc: usize,
    /// True for partial (`.handshake`) entries.
    pub partial: bool,
    /// Default pipeline (complete entries; `None` = path failed).
    pub original: Option<PathStats>,
    /// With the reduce stage; for partial entries this is the
    /// expansion+reduction composition.
    pub reduced: Option<PathStats>,
    /// Eager expansion extreme (partial entries only).
    pub eager: Option<PathStats>,
    /// Lazy expansion extreme (partial entries only).
    pub lazy: Option<PathStats>,
    /// Ranked expansion selection (partial entries only).
    pub selected: Option<PathStats>,
    /// Pre-rendered `--moves` body (empty when no moves were applied).
    pub moves_body: String,
    /// Wall time spent synthesizing this row's paths, first pass.
    pub wall_ms: f64,
}

/// A collected row, or the reason the whole row failed.
#[derive(Debug, Clone)]
pub enum RowResult {
    /// The row's paths (individually optional).
    Row(Box<Row>),
    /// The row could not be collected at all.
    Failed {
        /// Example name.
        name: &'static str,
        /// What went wrong.
        error: String,
    },
}

/// Pre-reduction and prefix-trie counters summed over the first-pass
/// corpus runs (from each run's [`reshuffle::Diagnostics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrereduceTotals {
    /// Places removed by structural pre-reduction.
    pub places_removed: u64,
    /// Transitions removed by structural pre-reduction.
    pub transitions_removed: u64,
    /// Lattice restriction products served from the shared-prefix
    /// cache (partial entries only).
    pub lattice_prefix_hits: u64,
}

impl PrereduceTotals {
    fn add(&mut self, diag: &reshuffle::Diagnostics) {
        self.places_removed += diag.prereduce_places_removed;
        self.transitions_removed += diag.prereduce_transitions_removed;
        self.lattice_prefix_hits += diag.lattice_prefix_hits;
    }
}

/// One scaled end-to-end trajectory row (`tables --scaled N`): the
/// synthetic fork/join controller pushed through the *full* pipeline
/// at a state count the default budget would refuse.
#[derive(Debug, Clone)]
pub struct TrajectoryRow {
    /// Variant name (`scaled{n}` plain, `scaled{n}p` dummy-padded).
    pub model: String,
    /// The generator's `n`.
    pub n: usize,
    /// Closed-form raw state count of the *unreduced* specification —
    /// what the build would have to explore with pre-reduction off
    /// (for the padded variant this exceeds any practical budget).
    pub states_raw: usize,
    /// States the pipeline actually built after pre-reduction.
    pub states_built: usize,
    /// Places removed by pre-reduction on this run.
    pub places_removed: u64,
    /// Transitions removed by pre-reduction on this run.
    pub transitions_removed: u64,
    /// Lattice restriction products served from the prefix trie (0:
    /// the scaled specifications are complete, no lattice exists).
    pub lattice_prefix_hits: u64,
    /// Literal estimate of the synthesized state graph.
    pub lits: u32,
    /// End-to-end wall time of the run.
    pub wall_ms: f64,
}

/// The whole report: rows plus cache behaviour.
#[derive(Debug, Clone)]
pub struct TablesReport {
    /// One result per corpus entry, in corpus order.
    pub rows: Vec<RowResult>,
    /// Cached results after the first pass.
    pub cache_entries: usize,
    /// Wall time of the first (cold) pass over the corpus.
    pub first_pass_ms: f64,
    /// Cache hits during the replay of every successful run.
    pub replay_hits: u64,
    /// Cache misses during the replay (0 when every run replays).
    pub replay_misses: u64,
    /// Wall time of the replay pass.
    pub replay_ms: f64,
    /// Pre-reduction / prefix-trie counters over the first pass.
    pub prereduce: PrereduceTotals,
    /// Scaled trajectory rows (empty unless `--scaled N` asked for
    /// them).
    pub trajectory: Vec<TrajectoryRow>,
}

impl TablesReport {
    /// Number of rows that failed to collect.
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, RowResult::Failed { .. }))
            .count()
    }
}

/// A successful run to replay against the cache.
type ReplayItem = (Stg, Option<StateGraph>, PipelineOptions);

/// Measures one synthesized path under the same delay model the
/// reduction search optimized for, so `cycle'` reports the optimizer's
/// own objective.
fn path_of(s: &Synthesis, ropts: &ReduceOptions) -> Result<PathStats, String> {
    let delays = DelayModel::uniform(&s.stg, ropts.input_delay, ropts.gate_delay);
    let run = simulate(&s.stg, &delays, &SimOptions::default()).map_err(|e| e.to_string())?;
    Ok(PathStats {
        lits: literal_estimate(&s.sg),
        cycle: run.period,
        inserted: s.inserted.len(),
        moves: s.moves.len(),
        choices: s.expansion.len(),
    })
}

/// Runs one pipeline flavor through the builder against the shared
/// cache, recording successful runs for the replay pass.
fn run_cached(
    stg: &Stg,
    sg: Option<&StateGraph>,
    opts: &PipelineOptions,
    cache: &SynthCache,
    replay: &mut Vec<ReplayItem>,
    totals: &mut PrereduceTotals,
) -> Result<Synthesis, String> {
    let parsed = match sg {
        Some(sg) => Pipeline::from_parts(stg.clone(), sg.clone()),
        None => Pipeline::from_stg(stg),
    };
    let done = parsed
        .with_cache(cache)
        .run(opts)
        .map_err(|e| e.to_string())?;
    totals.add(done.diagnostics());
    replay.push((stg.clone(), sg.cloned(), opts.clone()));
    Ok(done.into_synthesis())
}

/// Renders the accepted serializing moves of a reduction (the typed
/// trajectory carried on [`Synthesis::moves`]) with before→after
/// deltas, starting from the pre-reduction specification's statistics.
fn render_moves(
    spec: &Stg,
    spec_sg: &StateGraph,
    ropts: &ReduceOptions,
    steps: &[MoveStep],
) -> String {
    let delays = DelayModel::uniform(spec, ropts.input_delay, ropts.gate_delay);
    let Ok(run) = simulate(spec, &delays, &SimOptions::default()) else {
        return String::new();
    };
    let mut lits = literal_estimate(spec_sg);
    let mut cycle = run.period;
    let mut conf = analyze_csc(spec_sg).num_csc_conflicts();
    let mut out = String::new();
    for step in steps {
        out.push_str(&format!(
            "    move {:<16} lits {:>3} -> {:<3} cycle {:>5.1} -> {:<5.1} csc {} -> {}\n",
            step.label, lits, step.literals, cycle, step.cycle, conf, step.csc_conflicts
        ));
        lits = step.literals;
        cycle = step.cycle;
        conf = step.csc_conflicts;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn collect_row(
    name: &'static str,
    src: &str,
    cache: &SynthCache,
    ropts: &ReduceOptions,
    eopts: &ExpansionOptions,
    with_move_bodies: bool,
    replay: &mut Vec<ReplayItem>,
    totals: &mut PrereduceTotals,
) -> Result<Row, String> {
    let spec = parse_g(src).map_err(|e| e.to_string())?;
    let spec_sg = build_state_graph(&spec).map_err(|e| e.to_string())?;
    let states = spec_sg.num_states();
    let csc = analyze_csc(&spec_sg).num_csc_conflicts();
    let t = Instant::now();

    if spec.is_partial() {
        // Expansion extremes, each through the default pipeline.
        let cands =
            reshuffle::handshake::expand_handshakes(&spec, eopts).map_err(|e| e.to_string())?;
        let mut extreme = |c: &reshuffle::Reshuffling| {
            run_cached(
                &c.stg,
                Some(&c.sg),
                &PipelineOptions::default(),
                cache,
                replay,
                totals,
            )
            .and_then(|s| path_of(&s, ropts))
        };
        let eager = extreme(&cands[0]).ok();
        let lazy = extreme(cands.last().unwrap()).ok();
        // The ranked selection, and its reduce composition.
        let expand_opts = PipelineOptions::new().with_expand(eopts.clone());
        let selected_synth = run_cached(&spec, None, &expand_opts, cache, replay, totals)?;
        let selected = path_of(&selected_synth, ropts)?;
        let composed_opts = PipelineOptions::new()
            .with_expand(eopts.clone())
            .with_reduce(ropts.clone());
        let composed_synth = run_cached(&spec, None, &composed_opts, cache, replay, totals)?;
        let composed = path_of(&composed_synth, ropts)?;
        // Deltas start from the winning candidate's own (pre-reduction)
        // statistics.
        let moves_body = if !with_move_bodies || composed_synth.moves.is_empty() {
            String::new()
        } else {
            cands
                .iter()
                .find(|c| c.choices == composed_synth.expansion)
                .map(|w| render_moves(&w.stg, &w.sg, ropts, &composed_synth.moves))
                .unwrap_or_default()
        };
        return Ok(Row {
            name,
            states,
            csc,
            partial: true,
            original: None,
            reduced: Some(composed),
            eager,
            lazy,
            selected: Some(selected),
            moves_body,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        });
    }

    let original = run_cached(
        &spec,
        Some(&spec_sg),
        &PipelineOptions::default(),
        cache,
        replay,
        totals,
    )
    .and_then(|s| path_of(&s, ropts))
    .ok();
    let reduced_opts = PipelineOptions::new().with_reduce(ropts.clone());
    let reduced_synth = run_cached(&spec, Some(&spec_sg), &reduced_opts, cache, replay, totals)?;
    let reduced = path_of(&reduced_synth, ropts)?;
    let moves_body = if !with_move_bodies || reduced_synth.moves.is_empty() {
        String::new()
    } else {
        render_moves(&spec, &spec_sg, ropts, &reduced_synth.moves)
    };
    Ok(Row {
        name,
        states,
        csc,
        partial: false,
        original,
        reduced: Some(reduced),
        eager: None,
        lazy: None,
        selected: None,
        moves_body,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    })
}

/// Collects the full report: a cold pass over the corpus, then a
/// cache replay of every successful run. `with_move_bodies` controls
/// whether the per-move `--moves` delta bodies are rendered (they cost
/// an extra timed simulation per reduced row, so callers that will not
/// print them skip the work).
pub fn collect(with_move_bodies: bool) -> TablesReport {
    collect_scaled(with_move_bodies, None)
}

/// State budget of the scaled trajectory runs: the default 10^6 budget
/// refuses `scaled_pipeline(12)`'s 1 062 884 states by design, so the
/// trajectory raises it explicitly.
const SCALED_STATE_BUDGET: usize = 2_000_000;

/// Pushes `scaled_pipeline(n)` and its dummy-padded variant through
/// the *full* pipeline (budget raised past the default) and records
/// what pre-reduction did for each: the padded variant's raw state
/// space (`2*4^n + 2`) collapses to the plain one's (`2*3^n + 2`)
/// before the build ever runs.
fn collect_trajectory(n: usize) -> Vec<TrajectoryRow> {
    let variants = [
        (
            format!("scaled{n}"),
            examples::scaled_pipeline(n),
            examples::scaled_pipeline_states(n),
        ),
        (
            format!("scaled{n}p"),
            examples::scaled_pipeline_padded(n),
            examples::scaled_pipeline_padded_states(n),
        ),
    ];
    let opts = PipelineOptions::new().with_state_budget(SCALED_STATE_BUDGET);
    variants
        .into_iter()
        .map(|(model, src, states_raw)| {
            let t = Instant::now();
            let done = Pipeline::from_g(&src)
                .and_then(|p| p.run(&opts))
                .unwrap_or_else(|e| panic!("{model}: scaled trajectory run failed: {e}"));
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let diag = done.diagnostics();
            let states_built = diag
                .stage(reshuffle::Stage::Expand)
                .and_then(|r| r.states)
                .unwrap_or(0);
            let row = TrajectoryRow {
                n,
                states_raw,
                states_built,
                places_removed: diag.prereduce_places_removed,
                transitions_removed: diag.prereduce_transitions_removed,
                lattice_prefix_hits: diag.lattice_prefix_hits,
                lits: literal_estimate(&done.synthesis().sg),
                wall_ms,
                model,
            };
            row
        })
        .collect()
}

/// [`collect`], optionally also collecting the scaled end-to-end
/// trajectory (`tables --scaled N`): `scaled_pipeline(scaled)` and its
/// dummy-padded variant through the full pipeline.
pub fn collect_scaled(with_move_bodies: bool, scaled: Option<usize>) -> TablesReport {
    let cache = SynthCache::new();
    let ropts = ReduceOptions::default();
    let eopts = ExpansionOptions::default();
    let mut replay: Vec<ReplayItem> = Vec::new();
    let mut totals = PrereduceTotals::default();

    let t_first = Instant::now();
    let rows: Vec<RowResult> = examples::ALL
        .iter()
        .map(|(name, src)| {
            match collect_row(
                name,
                src,
                &cache,
                &ropts,
                &eopts,
                with_move_bodies,
                &mut replay,
                &mut totals,
            ) {
                Ok(row) => RowResult::Row(Box::new(row)),
                Err(error) => RowResult::Failed { name, error },
            }
        })
        .collect();
    let first_pass_ms = t_first.elapsed().as_secs_f64() * 1e3;

    let (hits0, misses0) = (cache.hits(), cache.misses());
    let t_replay = Instant::now();
    for (stg, sg, opts) in &replay {
        let parsed = match sg {
            Some(sg) => Pipeline::from_parts(stg.clone(), sg.clone()),
            None => Pipeline::from_stg(stg),
        };
        let _ = parsed.with_cache(&cache).run(opts);
    }
    let replay_ms = t_replay.elapsed().as_secs_f64() * 1e3;

    TablesReport {
        rows,
        cache_entries: cache.len(),
        first_pass_ms,
        replay_hits: cache.hits() - hits0,
        replay_misses: cache.misses() - misses0,
        replay_ms,
        prereduce: totals,
        trajectory: scaled.map(collect_trajectory).unwrap_or_default(),
    }
}

fn fmt3(p: &Option<PathStats>) -> String {
    match p {
        Some(p) => format!("{:>5} {:>6.1} {:>5}", p.lits, p.cycle, p.inserted),
        None => format!("{:>5} {:>6} {:>5}", "-", "-", "-"),
    }
}

fn fmt2(p: &Option<PathStats>) -> String {
    match p {
        Some(p) => format!("{:>5} {:>6.1}", p.lits, p.cycle),
        None => format!("{:>5} {:>6}", "-", "-"),
    }
}

/// Renders the classic column report; `show_moves` appends the
/// per-move delta lines under each row whose winning path serialized
/// concurrency.
pub fn render_text(report: &TablesReport, show_moves: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6} {:>5} {:>3} | {:>5} {:>6} | {:>5} {:>6} | {:>5} {:>6} {:>3} | {:>8}\n",
        "model", "states", "csc", "lits", "cycle", "sig+", "lits'", "cycle'", "sig+'", "mv",
        "elits", "ecycl", "llits", "lcycl", "xlits", "xcycl", "chc", "ms"
    ));
    for row in &report.rows {
        let row = match row {
            RowResult::Failed { name, error } => {
                out.push_str(&format!("{name:<8} FAILED: {error}\n"));
                continue;
            }
            RowResult::Row(row) => row,
        };
        let reduced = row.reduced.as_ref().expect("reduced path always collected");
        if row.partial {
            let selected = row
                .selected
                .as_ref()
                .expect("selected path always collected");
            out.push_str(&format!(
                "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6.1} {:>5} {:>3} | {} | {} | {:>5} {:>6.1} {:>3} | {:>8.1}\n",
                row.name, row.states, row.csc, "-", "-", "-",
                reduced.lits, reduced.cycle, reduced.inserted, reduced.moves,
                fmt2(&row.eager), fmt2(&row.lazy),
                selected.lits, selected.cycle, selected.choices, row.wall_ms,
            ));
        } else {
            let dash2 = format!("{:>5} {:>6}", "-", "-");
            out.push_str(&format!(
                "{:<8} {:>6} {:>4} | {} | {:>5} {:>6.1} {:>5} {:>3} | {} | {} | {:>5} {:>6} {:>3} | {:>8.1}\n",
                row.name, row.states, row.csc,
                fmt3(&row.original),
                reduced.lits, reduced.cycle, reduced.inserted, reduced.moves,
                dash2, dash2, "-", "-", "-", row.wall_ms,
            ));
        }
        if show_moves {
            out.push_str(&row.moves_body);
        }
    }
    out.push_str(&format!(
        "cache: {} entries; first pass {:.1} ms; replay {} hits / {} misses in {:.1} ms\n",
        report.cache_entries,
        report.first_pass_ms,
        report.replay_hits,
        report.replay_misses,
        report.replay_ms,
    ));
    out.push_str(&format!(
        "prereduce: {} places / {} transitions removed; {} lattice prefix hits\n",
        report.prereduce.places_removed,
        report.prereduce.transitions_removed,
        report.prereduce.lattice_prefix_hits,
    ));
    for row in &report.trajectory {
        out.push_str(&format!(
            "trajectory: {:<10} raw {:>9} -> built {:>8} states; -{} places -{} transitions; lits {}; {:.1} ms\n",
            row.model,
            row.states_raw,
            row.states_built,
            row.places_removed,
            row.transitions_removed,
            row.lits,
            row.wall_ms,
        ));
    }
    out
}

fn json_path(p: &Option<PathStats>) -> Json {
    match p {
        None => Json::Null,
        Some(p) => Json::obj(vec![
            ("lits", Json::Num(p.lits as f64)),
            ("cycle", Json::Num(p.cycle)),
            ("sig", Json::Num(p.inserted as f64)),
            ("mv", Json::Num(p.moves as f64)),
            ("chc", Json::Num(p.choices as f64)),
        ]),
    }
}

/// Renders the report as the machine-readable `reshuffle-tables/1`
/// schema. `with_timings: false` zeroes the machine-dependent wall
/// times (the committed `BENCH_tables.json` baseline format, so a
/// baseline refresh only diffs when a deterministic number moved).
pub fn render_json(report: &TablesReport, with_timings: bool) -> Json {
    let ms = |v: f64| Json::Num(if with_timings { v } else { 0.0 });
    let rows: Vec<Json> = report
        .rows
        .iter()
        .map(|row| match row {
            RowResult::Failed { name, error } => Json::obj(vec![
                ("model", Json::Str(name.to_string())),
                ("error", Json::Str(error.clone())),
            ]),
            RowResult::Row(row) => Json::obj(vec![
                ("model", Json::Str(row.name.to_string())),
                ("states", Json::Num(row.states as f64)),
                ("csc", Json::Num(row.csc as f64)),
                ("partial", Json::Bool(row.partial)),
                (
                    "paths",
                    Json::obj(vec![
                        ("default", json_path(&row.original)),
                        ("reduce", json_path(&row.reduced)),
                        ("eager", json_path(&row.eager)),
                        ("lazy", json_path(&row.lazy)),
                        ("selected", json_path(&row.selected)),
                    ]),
                ),
                ("wall_ms", ms(row.wall_ms)),
            ]),
        })
        .collect();
    let trajectory: Vec<Json> = report
        .trajectory
        .iter()
        .map(|row| {
            Json::obj(vec![
                ("model", Json::Str(row.model.clone())),
                ("n", Json::Num(row.n as f64)),
                ("states_raw", Json::Num(row.states_raw as f64)),
                ("states_built", Json::Num(row.states_built as f64)),
                ("places_removed", Json::Num(row.places_removed as f64)),
                (
                    "transitions_removed",
                    Json::Num(row.transitions_removed as f64),
                ),
                (
                    "lattice_prefix_hits",
                    Json::Num(row.lattice_prefix_hits as f64),
                ),
                ("lits", Json::Num(row.lits as f64)),
                ("wall_ms", ms(row.wall_ms)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str("reshuffle-tables/1".to_string())),
        ("rows", Json::Arr(rows)),
        (
            "cache",
            Json::obj(vec![
                ("entries", Json::Num(report.cache_entries as f64)),
                ("first_pass_ms", ms(report.first_pass_ms)),
                ("replay_hits", Json::Num(report.replay_hits as f64)),
                ("replay_misses", Json::Num(report.replay_misses as f64)),
                ("replay_ms", ms(report.replay_ms)),
            ]),
        ),
        (
            "prereduce",
            Json::obj(vec![
                (
                    "places_removed",
                    Json::Num(report.prereduce.places_removed as f64),
                ),
                (
                    "transitions_removed",
                    Json::Num(report.prereduce.transitions_removed as f64),
                ),
                (
                    "lattice_prefix_hits",
                    Json::Num(report.prereduce.lattice_prefix_hits as f64),
                ),
                ("trajectory", Json::Arr(trajectory)),
            ]),
        ),
        ("failures", Json::Num(report.failures() as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn report_collects_renders_and_reparses() {
        // n=4 keeps the trajectory runs cheap (164 / 514 raw states)
        // while exercising the same code path as the committed
        // `--scaled 12` baseline.
        let report = collect_scaled(true, Some(4));
        assert_eq!(report.rows.len(), examples::ALL.len());
        assert_eq!(report.failures(), 0, "corpus rows failed");
        // Every successful first-pass run replays from the cache.
        assert!(report.replay_hits > 0);
        assert_eq!(report.replay_misses, 0, "a replayed run missed the cache");
        assert!(report.cache_entries as u64 >= report.replay_hits);

        // The text report prints every corpus row and the cache footer.
        let text = render_text(&report, true);
        for (name, _) in examples::ALL {
            assert!(
                text.lines().any(|l| l.starts_with(name)),
                "missing row {name} in:\n{text}"
            );
        }
        assert!(text.contains("cache: "), "{text}");
        assert!(text.contains("move "), "no --moves body rendered:\n{text}");

        // The JSON report parses back and carries the same numbers.
        let rendered = render_json(&report, true).render();
        let parsed = json::parse(&rendered).expect("tables --json output must parse");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("reshuffle-tables/1")
        );
        let rows = parsed.get("rows").and_then(Json::items).unwrap();
        assert_eq!(rows.len(), examples::ALL.len());
        // Spot-check a pinned value: toggle's default path is 1 literal.
        let toggle = rows
            .iter()
            .find(|r| r.get("model").and_then(Json::as_str) == Some("toggle"))
            .unwrap();
        let lits = toggle
            .get("paths")
            .and_then(|p| p.get("default"))
            .and_then(|d| d.get("lits"))
            .and_then(Json::as_num);
        assert_eq!(lits, Some(1.0));
        assert_eq!(parsed.get("failures").and_then(Json::as_num), Some(0.0));

        // The partial entries exercised the shared-prefix trie; the
        // corpus itself is irredundant, so pre-reduction removes
        // nothing (outcome neutrality of the golden rows).
        assert!(report.prereduce.lattice_prefix_hits > 0);
        assert_eq!(report.prereduce.places_removed, 0);
        assert_eq!(report.prereduce.transitions_removed, 0);

        // The scaled trajectory ran both variants end-to-end: the
        // plain net pre-reduces to itself, the padded one collapses
        // from 2*4^n+2 raw states to the plain net's 2*3^n+2 build.
        assert_eq!(report.trajectory.len(), 2);
        let (plain, padded) = (&report.trajectory[0], &report.trajectory[1]);
        assert_eq!(plain.model, "scaled4");
        assert_eq!(plain.states_raw, examples::scaled_pipeline_states(4));
        assert_eq!(plain.states_built, plain.states_raw);
        assert_eq!(plain.places_removed, 0);
        assert_eq!(padded.model, "scaled4p");
        assert_eq!(
            padded.states_raw,
            examples::scaled_pipeline_padded_states(4)
        );
        assert_eq!(padded.states_built, examples::scaled_pipeline_states(4));
        assert_eq!(padded.transitions_removed, 8, "2n series dummies merged");
        assert!(padded.places_removed >= 8);
        // Both synthesize the same circuit: the padded spec commits the
        // same signal behaviour.
        assert_eq!(plain.lits, padded.lits);
        let text = render_text(&report, false);
        assert!(text.contains("prereduce: "), "{text}");
        assert!(text.contains("trajectory: scaled4p"), "{text}");

        // The baseline rendering zeroes every machine-dependent timing.
        let baseline = json::parse(&render_json(&report, false).render()).unwrap();
        let cache = baseline.get("cache").unwrap();
        assert_eq!(cache.get("first_pass_ms").and_then(Json::as_num), Some(0.0));
        assert_eq!(cache.get("replay_ms").and_then(Json::as_num), Some(0.0));
        for row in baseline.get("rows").and_then(Json::items).unwrap() {
            assert_eq!(row.get("wall_ms").and_then(Json::as_num), Some(0.0));
        }
        let pre = baseline.get("prereduce").unwrap();
        assert!(pre.get("lattice_prefix_hits").and_then(Json::as_num) > Some(0.0));
        let traj = pre.get("trajectory").and_then(Json::items).unwrap();
        assert_eq!(traj.len(), 2);
        for row in traj {
            assert_eq!(row.get("wall_ms").and_then(Json::as_num), Some(0.0));
        }
    }
}
