//! The Tables 1/2 report: data collection and rendering.
//!
//! [`collect`] drives the [`Pipeline`] builder over every corpus entry
//! in the same four flavors the golden suite pins — default, with the
//! Section 4 reduce stage, and (for partial entries) the Section 3
//! expansion extremes plus the ranked selection and its reduce
//! composition — against one shared [`SynthCache`], timing each row.
//! After the first pass it *replays* every successful run against the
//! cache, so the report also demonstrates the O(1) repeated-synthesis
//! path and its hit counters.
//!
//! [`render_text`] formats the classic column report (now with a
//! per-row `ms` column and a cache footer); [`render_json`] emits the
//! same numbers machine-readably — the `BENCH_tables.json`
//! perf-trajectory baseline at the repository root is its output.

use std::time::Instant;

use reshuffle::{
    ExpansionOptions, MoveStep, Pipeline, PipelineOptions, ReduceOptions, Stg, SynthCache,
    Synthesis,
};
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, csc::analyze_csc, StateGraph};
use reshuffle_synth::literal_estimate;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

use crate::examples;
use crate::json::Json;

/// One synthesized path of a row: literals, cycle time, state signals
/// inserted, serializing moves applied, expansion choices committed.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Literal estimate of the synthesized state graph.
    pub lits: u32,
    /// Steady-state cycle time under the reduce stage's delay model.
    pub cycle: f64,
    /// State signals inserted to resolve CSC.
    pub inserted: usize,
    /// Serializing moves applied.
    pub moves: usize,
    /// Reshuffling ordering choices committed.
    pub choices: usize,
}

/// One collected corpus row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Example name.
    pub name: &'static str,
    /// States of the specification's graph.
    pub states: usize,
    /// CSC conflicts of the specification.
    pub csc: usize,
    /// True for partial (`.handshake`) entries.
    pub partial: bool,
    /// Default pipeline (complete entries; `None` = path failed).
    pub original: Option<PathStats>,
    /// With the reduce stage; for partial entries this is the
    /// expansion+reduction composition.
    pub reduced: Option<PathStats>,
    /// Eager expansion extreme (partial entries only).
    pub eager: Option<PathStats>,
    /// Lazy expansion extreme (partial entries only).
    pub lazy: Option<PathStats>,
    /// Ranked expansion selection (partial entries only).
    pub selected: Option<PathStats>,
    /// Pre-rendered `--moves` body (empty when no moves were applied).
    pub moves_body: String,
    /// Wall time spent synthesizing this row's paths, first pass.
    pub wall_ms: f64,
}

/// A collected row, or the reason the whole row failed.
#[derive(Debug, Clone)]
pub enum RowResult {
    /// The row's paths (individually optional).
    Row(Box<Row>),
    /// The row could not be collected at all.
    Failed {
        /// Example name.
        name: &'static str,
        /// What went wrong.
        error: String,
    },
}

/// The whole report: rows plus cache behaviour.
#[derive(Debug, Clone)]
pub struct TablesReport {
    /// One result per corpus entry, in corpus order.
    pub rows: Vec<RowResult>,
    /// Cached results after the first pass.
    pub cache_entries: usize,
    /// Wall time of the first (cold) pass over the corpus.
    pub first_pass_ms: f64,
    /// Cache hits during the replay of every successful run.
    pub replay_hits: u64,
    /// Cache misses during the replay (0 when every run replays).
    pub replay_misses: u64,
    /// Wall time of the replay pass.
    pub replay_ms: f64,
}

impl TablesReport {
    /// Number of rows that failed to collect.
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, RowResult::Failed { .. }))
            .count()
    }
}

/// A successful run to replay against the cache.
type ReplayItem = (Stg, Option<StateGraph>, PipelineOptions);

/// Measures one synthesized path under the same delay model the
/// reduction search optimized for, so `cycle'` reports the optimizer's
/// own objective.
fn path_of(s: &Synthesis, ropts: &ReduceOptions) -> Result<PathStats, String> {
    let delays = DelayModel::uniform(&s.stg, ropts.input_delay, ropts.gate_delay);
    let run = simulate(&s.stg, &delays, &SimOptions::default()).map_err(|e| e.to_string())?;
    Ok(PathStats {
        lits: literal_estimate(&s.sg),
        cycle: run.period,
        inserted: s.inserted.len(),
        moves: s.moves.len(),
        choices: s.expansion.len(),
    })
}

/// Runs one pipeline flavor through the builder against the shared
/// cache, recording successful runs for the replay pass.
fn run_cached(
    stg: &Stg,
    sg: Option<&StateGraph>,
    opts: &PipelineOptions,
    cache: &SynthCache,
    replay: &mut Vec<ReplayItem>,
) -> Result<Synthesis, String> {
    let parsed = match sg {
        Some(sg) => Pipeline::from_parts(stg.clone(), sg.clone()),
        None => Pipeline::from_stg(stg),
    };
    let done = parsed
        .with_cache(cache)
        .run(opts)
        .map_err(|e| e.to_string())?;
    replay.push((stg.clone(), sg.cloned(), opts.clone()));
    Ok(done.into_synthesis())
}

/// Renders the accepted serializing moves of a reduction (the typed
/// trajectory carried on [`Synthesis::moves`]) with before→after
/// deltas, starting from the pre-reduction specification's statistics.
fn render_moves(
    spec: &Stg,
    spec_sg: &StateGraph,
    ropts: &ReduceOptions,
    steps: &[MoveStep],
) -> String {
    let delays = DelayModel::uniform(spec, ropts.input_delay, ropts.gate_delay);
    let Ok(run) = simulate(spec, &delays, &SimOptions::default()) else {
        return String::new();
    };
    let mut lits = literal_estimate(spec_sg);
    let mut cycle = run.period;
    let mut conf = analyze_csc(spec_sg).num_csc_conflicts();
    let mut out = String::new();
    for step in steps {
        out.push_str(&format!(
            "    move {:<16} lits {:>3} -> {:<3} cycle {:>5.1} -> {:<5.1} csc {} -> {}\n",
            step.label, lits, step.literals, cycle, step.cycle, conf, step.csc_conflicts
        ));
        lits = step.literals;
        cycle = step.cycle;
        conf = step.csc_conflicts;
    }
    out
}

fn collect_row(
    name: &'static str,
    src: &str,
    cache: &SynthCache,
    ropts: &ReduceOptions,
    eopts: &ExpansionOptions,
    with_move_bodies: bool,
    replay: &mut Vec<ReplayItem>,
) -> Result<Row, String> {
    let spec = parse_g(src).map_err(|e| e.to_string())?;
    let spec_sg = build_state_graph(&spec).map_err(|e| e.to_string())?;
    let states = spec_sg.num_states();
    let csc = analyze_csc(&spec_sg).num_csc_conflicts();
    let t = Instant::now();

    if spec.is_partial() {
        // Expansion extremes, each through the default pipeline.
        let cands =
            reshuffle::handshake::expand_handshakes(&spec, eopts).map_err(|e| e.to_string())?;
        let mut extreme = |c: &reshuffle::Reshuffling| {
            run_cached(
                &c.stg,
                Some(&c.sg),
                &PipelineOptions::default(),
                cache,
                replay,
            )
            .and_then(|s| path_of(&s, ropts))
        };
        let eager = extreme(&cands[0]).ok();
        let lazy = extreme(cands.last().unwrap()).ok();
        // The ranked selection, and its reduce composition.
        let expand_opts = PipelineOptions::new().with_expand(eopts.clone());
        let selected_synth = run_cached(&spec, None, &expand_opts, cache, replay)?;
        let selected = path_of(&selected_synth, ropts)?;
        let composed_opts = PipelineOptions::new()
            .with_expand(eopts.clone())
            .with_reduce(ropts.clone());
        let composed_synth = run_cached(&spec, None, &composed_opts, cache, replay)?;
        let composed = path_of(&composed_synth, ropts)?;
        // Deltas start from the winning candidate's own (pre-reduction)
        // statistics.
        let moves_body = if !with_move_bodies || composed_synth.moves.is_empty() {
            String::new()
        } else {
            cands
                .iter()
                .find(|c| c.choices == composed_synth.expansion)
                .map(|w| render_moves(&w.stg, &w.sg, ropts, &composed_synth.moves))
                .unwrap_or_default()
        };
        return Ok(Row {
            name,
            states,
            csc,
            partial: true,
            original: None,
            reduced: Some(composed),
            eager,
            lazy,
            selected: Some(selected),
            moves_body,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        });
    }

    let original = run_cached(
        &spec,
        Some(&spec_sg),
        &PipelineOptions::default(),
        cache,
        replay,
    )
    .and_then(|s| path_of(&s, ropts))
    .ok();
    let reduced_opts = PipelineOptions::new().with_reduce(ropts.clone());
    let reduced_synth = run_cached(&spec, Some(&spec_sg), &reduced_opts, cache, replay)?;
    let reduced = path_of(&reduced_synth, ropts)?;
    let moves_body = if !with_move_bodies || reduced_synth.moves.is_empty() {
        String::new()
    } else {
        render_moves(&spec, &spec_sg, ropts, &reduced_synth.moves)
    };
    Ok(Row {
        name,
        states,
        csc,
        partial: false,
        original,
        reduced: Some(reduced),
        eager: None,
        lazy: None,
        selected: None,
        moves_body,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    })
}

/// Collects the full report: a cold pass over the corpus, then a
/// cache replay of every successful run. `with_move_bodies` controls
/// whether the per-move `--moves` delta bodies are rendered (they cost
/// an extra timed simulation per reduced row, so callers that will not
/// print them skip the work).
pub fn collect(with_move_bodies: bool) -> TablesReport {
    let cache = SynthCache::new();
    let ropts = ReduceOptions::default();
    let eopts = ExpansionOptions::default();
    let mut replay: Vec<ReplayItem> = Vec::new();

    let t_first = Instant::now();
    let rows: Vec<RowResult> = examples::ALL
        .iter()
        .map(|(name, src)| {
            match collect_row(
                name,
                src,
                &cache,
                &ropts,
                &eopts,
                with_move_bodies,
                &mut replay,
            ) {
                Ok(row) => RowResult::Row(Box::new(row)),
                Err(error) => RowResult::Failed { name, error },
            }
        })
        .collect();
    let first_pass_ms = t_first.elapsed().as_secs_f64() * 1e3;

    let (hits0, misses0) = (cache.hits(), cache.misses());
    let t_replay = Instant::now();
    for (stg, sg, opts) in &replay {
        let parsed = match sg {
            Some(sg) => Pipeline::from_parts(stg.clone(), sg.clone()),
            None => Pipeline::from_stg(stg),
        };
        let _ = parsed.with_cache(&cache).run(opts);
    }
    let replay_ms = t_replay.elapsed().as_secs_f64() * 1e3;

    TablesReport {
        rows,
        cache_entries: cache.len(),
        first_pass_ms,
        replay_hits: cache.hits() - hits0,
        replay_misses: cache.misses() - misses0,
        replay_ms,
    }
}

fn fmt3(p: &Option<PathStats>) -> String {
    match p {
        Some(p) => format!("{:>5} {:>6.1} {:>5}", p.lits, p.cycle, p.inserted),
        None => format!("{:>5} {:>6} {:>5}", "-", "-", "-"),
    }
}

fn fmt2(p: &Option<PathStats>) -> String {
    match p {
        Some(p) => format!("{:>5} {:>6.1}", p.lits, p.cycle),
        None => format!("{:>5} {:>6}", "-", "-"),
    }
}

/// Renders the classic column report; `show_moves` appends the
/// per-move delta lines under each row whose winning path serialized
/// concurrency.
pub fn render_text(report: &TablesReport, show_moves: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6} {:>5} {:>3} | {:>5} {:>6} | {:>5} {:>6} | {:>5} {:>6} {:>3} | {:>8}\n",
        "model", "states", "csc", "lits", "cycle", "sig+", "lits'", "cycle'", "sig+'", "mv",
        "elits", "ecycl", "llits", "lcycl", "xlits", "xcycl", "chc", "ms"
    ));
    for row in &report.rows {
        let row = match row {
            RowResult::Failed { name, error } => {
                out.push_str(&format!("{name:<8} FAILED: {error}\n"));
                continue;
            }
            RowResult::Row(row) => row,
        };
        let reduced = row.reduced.as_ref().expect("reduced path always collected");
        if row.partial {
            let selected = row
                .selected
                .as_ref()
                .expect("selected path always collected");
            out.push_str(&format!(
                "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6.1} {:>5} {:>3} | {} | {} | {:>5} {:>6.1} {:>3} | {:>8.1}\n",
                row.name, row.states, row.csc, "-", "-", "-",
                reduced.lits, reduced.cycle, reduced.inserted, reduced.moves,
                fmt2(&row.eager), fmt2(&row.lazy),
                selected.lits, selected.cycle, selected.choices, row.wall_ms,
            ));
        } else {
            let dash2 = format!("{:>5} {:>6}", "-", "-");
            out.push_str(&format!(
                "{:<8} {:>6} {:>4} | {} | {:>5} {:>6.1} {:>5} {:>3} | {} | {} | {:>5} {:>6} {:>3} | {:>8.1}\n",
                row.name, row.states, row.csc,
                fmt3(&row.original),
                reduced.lits, reduced.cycle, reduced.inserted, reduced.moves,
                dash2, dash2, "-", "-", "-", row.wall_ms,
            ));
        }
        if show_moves {
            out.push_str(&row.moves_body);
        }
    }
    out.push_str(&format!(
        "cache: {} entries; first pass {:.1} ms; replay {} hits / {} misses in {:.1} ms\n",
        report.cache_entries,
        report.first_pass_ms,
        report.replay_hits,
        report.replay_misses,
        report.replay_ms,
    ));
    out
}

fn json_path(p: &Option<PathStats>) -> Json {
    match p {
        None => Json::Null,
        Some(p) => Json::obj(vec![
            ("lits", Json::Num(p.lits as f64)),
            ("cycle", Json::Num(p.cycle)),
            ("sig", Json::Num(p.inserted as f64)),
            ("mv", Json::Num(p.moves as f64)),
            ("chc", Json::Num(p.choices as f64)),
        ]),
    }
}

/// Renders the report as the machine-readable `reshuffle-tables/1`
/// schema. `with_timings: false` zeroes the machine-dependent wall
/// times (the committed `BENCH_tables.json` baseline format, so a
/// baseline refresh only diffs when a deterministic number moved).
pub fn render_json(report: &TablesReport, with_timings: bool) -> Json {
    let ms = |v: f64| Json::Num(if with_timings { v } else { 0.0 });
    let rows: Vec<Json> = report
        .rows
        .iter()
        .map(|row| match row {
            RowResult::Failed { name, error } => Json::obj(vec![
                ("model", Json::Str(name.to_string())),
                ("error", Json::Str(error.clone())),
            ]),
            RowResult::Row(row) => Json::obj(vec![
                ("model", Json::Str(row.name.to_string())),
                ("states", Json::Num(row.states as f64)),
                ("csc", Json::Num(row.csc as f64)),
                ("partial", Json::Bool(row.partial)),
                (
                    "paths",
                    Json::obj(vec![
                        ("default", json_path(&row.original)),
                        ("reduce", json_path(&row.reduced)),
                        ("eager", json_path(&row.eager)),
                        ("lazy", json_path(&row.lazy)),
                        ("selected", json_path(&row.selected)),
                    ]),
                ),
                ("wall_ms", ms(row.wall_ms)),
            ]),
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str("reshuffle-tables/1".to_string())),
        ("rows", Json::Arr(rows)),
        (
            "cache",
            Json::obj(vec![
                ("entries", Json::Num(report.cache_entries as f64)),
                ("first_pass_ms", ms(report.first_pass_ms)),
                ("replay_hits", Json::Num(report.replay_hits as f64)),
                ("replay_misses", Json::Num(report.replay_misses as f64)),
                ("replay_ms", ms(report.replay_ms)),
            ]),
        ),
        ("failures", Json::Num(report.failures() as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn report_collects_renders_and_reparses() {
        let report = collect(true);
        assert_eq!(report.rows.len(), examples::ALL.len());
        assert_eq!(report.failures(), 0, "corpus rows failed");
        // Every successful first-pass run replays from the cache.
        assert!(report.replay_hits > 0);
        assert_eq!(report.replay_misses, 0, "a replayed run missed the cache");
        assert!(report.cache_entries as u64 >= report.replay_hits);

        // The text report prints every corpus row and the cache footer.
        let text = render_text(&report, true);
        for (name, _) in examples::ALL {
            assert!(
                text.lines().any(|l| l.starts_with(name)),
                "missing row {name} in:\n{text}"
            );
        }
        assert!(text.contains("cache: "), "{text}");
        assert!(text.contains("move "), "no --moves body rendered:\n{text}");

        // The JSON report parses back and carries the same numbers.
        let rendered = render_json(&report, true).render();
        let parsed = json::parse(&rendered).expect("tables --json output must parse");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("reshuffle-tables/1")
        );
        let rows = parsed.get("rows").and_then(Json::items).unwrap();
        assert_eq!(rows.len(), examples::ALL.len());
        // Spot-check a pinned value: toggle's default path is 1 literal.
        let toggle = rows
            .iter()
            .find(|r| r.get("model").and_then(Json::as_str) == Some("toggle"))
            .unwrap();
        let lits = toggle
            .get("paths")
            .and_then(|p| p.get("default"))
            .and_then(|d| d.get("lits"))
            .and_then(Json::as_num);
        assert_eq!(lits, Some(1.0));
        assert_eq!(parsed.get("failures").and_then(Json::as_num), Some(0.0));

        // The baseline rendering zeroes every machine-dependent timing.
        let baseline = json::parse(&render_json(&report, false).render()).unwrap();
        let cache = baseline.get("cache").unwrap();
        assert_eq!(cache.get("first_pass_ms").and_then(Json::as_num), Some(0.0));
        assert_eq!(cache.get("replay_ms").and_then(Json::as_num), Some(0.0));
        for row in baseline.get("rows").and_then(Json::items).unwrap() {
            assert_eq!(row.get("wall_ms").and_then(Json::as_num), Some(0.0));
        }
    }
}
