//! Prints the workspace's version of the paper's Tables 1/2: per
//! example, state-graph size and CSC conflicts of the *specification*,
//! then the synthesized result without (`lits`, `cycle`, `sig+`) and
//! with (`lits'`, `cycle'`, `sig+'`, `mv`) the Section 4
//! concurrency-reduction stage, and — for partial specifications — the
//! Section 3 handshake-expansion comparison: the *eager* and *lazy*
//! extremes of the reshuffling lattice (`elits`/`ecycl`,
//! `llits`/`lcycl`) against the ranked selection (`xlits`/`xcycl`,
//! `chc` ordering choices committed). A trailing `ms` column reports
//! the row's synthesis wall time, and a footer reports the shared
//! [`SynthCache`](reshuffle::SynthCache)'s entry count and the
//! hit/miss outcome of replaying every successful run against it.
//!
//! Partial rows run the default and reduce paths through the expansion
//! stage (a partial spec cannot be synthesized otherwise): their
//! `lits'` group is the expand+reduce composition. A `-` entry means
//! that path failed (e.g. `mfig1` stalls CSC insertion unless reduction
//! runs first, and `hslr`'s lazy extreme stalls without reduction); the
//! report only counts an example as failed when every applicable path
//! fails.
//!
//! `--moves` additionally prints, per row whose winning path serialized
//! concurrency, the accepted moves with literals/cycle before→after
//! each one. `--json` emits the whole report in the machine-readable
//! `reshuffle-tables/1` schema instead; `--json --baseline` zeroes the
//! machine-dependent wall times, which is how the committed
//! `BENCH_tables.json` perf-trajectory baseline is produced.
//! `--scaled N` additionally pushes `scaled_pipeline(N)` and its
//! dummy-padded variant through the full pipeline (state budget raised
//! past the default million) and appends their pre-reduction trajectory
//! rows — the committed baseline is produced with `--scaled 12`.

use reshuffle_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mut show_moves, mut as_json, mut baseline) = (false, false, false);
    let mut scaled: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--moves" => show_moves = true,
            "--json" => as_json = true,
            "--baseline" => baseline = true,
            "--scaled" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => scaled = Some(n),
                None => {
                    eprintln!("error: --scaled requires a numeric argument (e.g. --scaled 12)");
                    std::process::exit(2);
                }
            },
            unknown => {
                eprintln!(
                    "error: unknown argument `{unknown}` \
                     (expected --moves, --json, --baseline, --scaled N)"
                );
                std::process::exit(2);
            }
        }
    }
    let report = tables::collect_scaled(show_moves && !as_json, scaled);
    if as_json {
        println!("{}", tables::render_json(&report, !baseline).render());
    } else {
        print!("{}", tables::render_text(&report, show_moves));
    }
    if report.failures() > 0 {
        std::process::exit(1);
    }
}
