//! Prints the workspace's version of the paper's Tables 1/2: per
//! example, state-graph size and CSC conflicts of the *specification*,
//! then the synthesized result without (`lits`, `cycle`, `sig+`) and
//! with (`lits'`, `cycle'`, `sig+'`, `mv`) the Section 4
//! concurrency-reduction stage, and — for partial specifications — the
//! Section 3 handshake-expansion comparison: the *eager* and *lazy*
//! extremes of the reshuffling lattice (`elits`/`ecycl`,
//! `llits`/`lcycl`) against the ranked selection (`xlits`/`xcycl`,
//! `chc` ordering choices committed). A trailing `ms` column reports
//! the row's synthesis wall time, and a footer reports the shared
//! [`SynthCache`](reshuffle::SynthCache)'s entry count and the
//! hit/miss outcome of replaying every successful run against it.
//!
//! Partial rows run the default and reduce paths through the expansion
//! stage (a partial spec cannot be synthesized otherwise): their
//! `lits'` group is the expand+reduce composition. A `-` entry means
//! that path failed (e.g. `mfig1` stalls CSC insertion unless reduction
//! runs first, and `hslr`'s lazy extreme stalls without reduction); the
//! report only counts an example as failed when every applicable path
//! fails.
//!
//! `--moves` additionally prints, per row whose winning path serialized
//! concurrency, the accepted moves with literals/cycle before→after
//! each one. `--json` emits the whole report in the machine-readable
//! `reshuffle-tables/1` schema instead; `--json --baseline` zeroes the
//! machine-dependent wall times, which is how the committed
//! `BENCH_tables.json` perf-trajectory baseline is produced.

use reshuffle_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_moves = args.iter().any(|a| a == "--moves");
    let as_json = args.iter().any(|a| a == "--json");
    let baseline = args.iter().any(|a| a == "--baseline");
    if let Some(unknown) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--moves" | "--json" | "--baseline"))
    {
        eprintln!("error: unknown argument `{unknown}` (expected --moves, --json, --baseline)");
        std::process::exit(2);
    }
    let report = tables::collect(show_moves && !as_json);
    if as_json {
        println!("{}", tables::render_json(&report, !baseline).render());
    } else {
        print!("{}", tables::render_text(&report, show_moves));
    }
    if report.failures() > 0 {
        std::process::exit(1);
    }
}
