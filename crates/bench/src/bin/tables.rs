//! Prints the workspace's version of the paper's Tables 1/2: per
//! example, state-graph size, literal estimate, mapped area, and the
//! timed cycle metrics (`cr.cycle`, `inp.events`).
//!
//! The `csc` column counts conflicts of the *specification*; every
//! other column describes the synthesized result (after any state
//! signals were inserted), so rows stay internally consistent.

use reshuffle::{synthesize_stg_from, Library, PipelineOptions};
use reshuffle_bench::examples;
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, csc::analyze_csc};
use reshuffle_synth::literal_estimate;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

fn main() {
    let lib = Library::default();
    println!(
        "{:<8} {:>7} {:>8} {:>9} {:>6} {:>9} {:>10}",
        "model", "states", "csc", "literals", "area", "cr.cycle", "inp.events"
    );
    let mut failures = 0usize;
    for (name, src) in examples::ALL {
        let row = (|| -> Result<String, Box<dyn std::error::Error>> {
            let spec = parse_g(src)?;
            let spec_sg = build_state_graph(&spec)?;
            let spec_conflicts = analyze_csc(&spec_sg).num_csc_conflicts();
            let s = synthesize_stg_from(&spec, spec_sg, &PipelineOptions::default())?;
            let delays = DelayModel::uniform(&s.stg, 2.0, 1.0);
            let run = simulate(&s.stg, &delays, &SimOptions::default())?;
            Ok(format!(
                "{:<8} {:>7} {:>8} {:>9} {:>6.1} {:>9.1} {:>10}",
                name,
                s.sg.num_states(),
                spec_conflicts,
                literal_estimate(&s.sg),
                s.netlist.area(&lib),
                run.period,
                run.input_events_on_cycle
            ))
        })();
        match row {
            Ok(r) => println!("{r}"),
            Err(e) => {
                failures += 1;
                println!("{name:<8} FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
