//! Prints the workspace's version of the paper's Tables 1/2: per
//! example, state-graph size and CSC conflicts of the *specification*,
//! then the synthesized result without (`lits`, `cycle`, `sig+`) and
//! with (`lits'`, `cycle'`, `sig+'`, `mv`) the Section 4
//! concurrency-reduction stage, and — for partial specifications — the
//! Section 3 handshake-expansion comparison: the *eager* and *lazy*
//! extremes of the reshuffling lattice (`elits`/`ecycl`,
//! `llits`/`lcycl`) against the ranked selection (`xlits`/`xcycl`,
//! `chc` ordering choices committed).
//!
//! Partial rows run the default and reduce paths through the expansion
//! stage (a partial spec cannot be synthesized otherwise): their
//! `lits'` group is the expand+reduce composition. A `-` entry means
//! that path failed (e.g. `mfig1` stalls CSC insertion unless reduction
//! runs first, and `hslr`'s lazy extreme stalls without reduction); the
//! report only counts an example as failed when every applicable path
//! fails.
//!
//! `--moves` additionally prints, per row whose winning path serialized
//! concurrency, the accepted moves with literals/cycle before→after
//! each one.

use reshuffle::handshake::{expand_handshakes, ExpansionOptions};
use reshuffle::{
    synthesize_stg_from, synthesize_with, MoveStep, PipelineOptions, ReduceOptions, Synthesis,
};
use reshuffle_bench::examples;
use reshuffle_petri::{parse_g, Stg};
use reshuffle_sg::{build_state_graph, csc::analyze_csc, StateGraph};
use reshuffle_synth::literal_estimate;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

/// One synthesized path of a row: literals, cycle time, state signals
/// inserted, serializing moves applied, expansion choices committed.
struct Path {
    lits: u32,
    cycle: f64,
    inserted: usize,
    moves: usize,
    choices: usize,
}

/// Measures one synthesized path under the same delay model the
/// reduction search optimized for, so `cycle'` reports the optimizer's
/// own objective.
fn path_of(s: &Synthesis, ropts: &ReduceOptions) -> Result<Path, Box<dyn std::error::Error>> {
    let delays = DelayModel::uniform(&s.stg, ropts.input_delay, ropts.gate_delay);
    let run = simulate(&s.stg, &delays, &SimOptions::default())?;
    Ok(Path {
        lits: literal_estimate(&s.sg),
        cycle: run.period,
        inserted: s.inserted.len(),
        moves: s.moves.len(),
        choices: s.expansion.len(),
    })
}

fn fmt3(p: &Result<Path, Box<dyn std::error::Error>>) -> String {
    match p {
        Ok(p) => format!("{:>5} {:>6.1} {:>5}", p.lits, p.cycle, p.inserted),
        Err(_) => format!("{:>5} {:>6} {:>5}", "-", "-", "-"),
    }
}

fn fmt2(p: &Result<Path, Box<dyn std::error::Error>>) -> String {
    match p {
        Ok(p) => format!("{:>5} {:>6.1}", p.lits, p.cycle),
        Err(_) => format!("{:>5} {:>6}", "-", "-"),
    }
}

/// Renders the accepted serializing moves of a reduction (the per-move
/// trajectory carried on [`Synthesis::move_steps`]) with before→after
/// deltas, starting from the pre-reduction specification's statistics.
fn render_moves(
    spec: &Stg,
    spec_sg: &StateGraph,
    ropts: &ReduceOptions,
    steps: &[MoveStep],
) -> String {
    let delays = DelayModel::uniform(spec, ropts.input_delay, ropts.gate_delay);
    let Ok(run) = simulate(spec, &delays, &SimOptions::default()) else {
        return String::new();
    };
    let mut lits = literal_estimate(spec_sg);
    let mut cycle = run.period;
    let mut conf = analyze_csc(spec_sg).num_csc_conflicts();
    let mut out = String::new();
    for step in steps {
        out.push_str(&format!(
            "    move {:<16} lits {:>3} -> {:<3} cycle {:>5.1} -> {:<5.1} csc {} -> {}\n",
            step.label, lits, step.literals, cycle, step.cycle, conf, step.csc_conflicts
        ));
        lits = step.literals;
        cycle = step.cycle;
        conf = step.csc_conflicts;
    }
    out
}

fn main() {
    let show_moves = std::env::args().any(|a| a == "--moves");
    println!(
        "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6} {:>5} {:>3} | {:>5} {:>6} | {:>5} {:>6} | {:>5} {:>6} {:>3}",
        "model", "states", "csc", "lits", "cycle", "sig+", "lits'", "cycle'", "sig+'", "mv",
        "elits", "ecycl", "llits", "lcycl", "xlits", "xcycl", "chc"
    );
    let mut failures = 0usize;
    let ropts = ReduceOptions::default();
    let eopts = ExpansionOptions::default();
    for (name, src) in examples::ALL {
        let row = (|| -> Result<(String, String), Box<dyn std::error::Error>> {
            let spec = parse_g(src)?;
            let spec_sg = build_state_graph(&spec)?;
            let states = spec_sg.num_states();
            let conflicts = analyze_csc(&spec_sg).num_csc_conflicts();
            let dash2 = format!("{:>5} {:>6}", "-", "-");

            if spec.is_partial() {
                // Expansion extremes, each through the default pipeline.
                let cands = expand_handshakes(&spec, &eopts)?;
                let extreme = |c: &reshuffle::Reshuffling| {
                    synthesize_stg_from(&c.stg, c.sg.clone(), &PipelineOptions::default())
                        .map_err(Box::<dyn std::error::Error>::from)
                        .and_then(|s| path_of(&s, &ropts))
                };
                let eager = extreme(&cands[0]);
                let lazy = extreme(cands.last().unwrap());
                // The ranked selection, and its reduce composition.
                let expand_opts = PipelineOptions {
                    expand: Some(eopts.clone()),
                    ..Default::default()
                };
                let selected_synth = synthesize_with(src, &expand_opts)?;
                let selected = path_of(&selected_synth, &ropts)?;
                let composed_opts = PipelineOptions {
                    expand: Some(eopts.clone()),
                    reduce: Some(ropts.clone()),
                    ..Default::default()
                };
                let composed_synth = synthesize_with(src, &composed_opts)?;
                let composed = path_of(&composed_synth, &ropts)?;
                let mut moves_body = String::new();
                if show_moves && !composed_synth.move_steps.is_empty() {
                    // Deltas start from the winning candidate's own
                    // (pre-reduction) statistics.
                    if let Some(w) = cands.iter().find(|c| c.choices == composed_synth.expansion) {
                        moves_body =
                            render_moves(&w.stg, &w.sg, &ropts, &composed_synth.move_steps);
                    }
                }
                return Ok((
                    format!(
                        "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6.1} {:>5} {:>3} | {} | {} | {:>5} {:>6.1} {:>3}",
                        name, states, conflicts, "-", "-", "-",
                        composed.lits, composed.cycle, composed.inserted, composed.moves,
                        fmt2(&eager), fmt2(&lazy),
                        selected.lits, selected.cycle, selected.choices,
                    ),
                    moves_body,
                ));
            }

            let original = synthesize_stg_from(&spec, spec_sg.clone(), &PipelineOptions::default())
                .map_err(Box::<dyn std::error::Error>::from)
                .and_then(|s| path_of(&s, &ropts));
            let reduced_opts = PipelineOptions {
                reduce: Some(ropts.clone()),
                ..Default::default()
            };
            let reduced_synth = synthesize_stg_from(&spec, spec_sg.clone(), &reduced_opts)?;
            let reduced = path_of(&reduced_synth, &ropts)?;
            let moves_body = if show_moves && !reduced_synth.move_steps.is_empty() {
                render_moves(&spec, &spec_sg, &ropts, &reduced_synth.move_steps)
            } else {
                String::new()
            };
            Ok((
                format!(
                    "{:<8} {:>6} {:>4} | {} | {:>5} {:>6.1} {:>5} {:>3} | {} | {} | {:>5} {:>6} {:>3}",
                    name,
                    states,
                    conflicts,
                    fmt3(&original),
                    reduced.lits,
                    reduced.cycle,
                    reduced.inserted,
                    reduced.moves,
                    dash2,
                    dash2,
                    "-",
                    "-",
                    "-",
                ),
                moves_body,
            ))
        })();
        match row {
            Ok((r, moves_body)) => {
                println!("{r}");
                print!("{moves_body}");
            }
            Err(e) => {
                failures += 1;
                println!("{name:<8} FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
