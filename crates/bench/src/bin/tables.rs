//! Prints the workspace's version of the paper's Tables 1/2: per
//! example, state-graph size and CSC conflicts of the *specification*,
//! then the synthesized result both without (`lits`, `cycle`, `sig+`)
//! and with (`lits'`, `cycle'`, `sig+'`, `moves`) the Section 4
//! concurrency-reduction stage, so the reduced-vs-original literal and
//! cycle trade-off is visible per row.
//!
//! A `-` entry means that path failed (e.g. `mfig1` stalls CSC
//! insertion unless reduction runs first); the report only counts an
//! example as failed when the reduced pipeline fails too.

use reshuffle::{synthesize_stg_from, PipelineOptions, ReduceOptions, Synthesis};
use reshuffle_bench::examples;
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, csc::analyze_csc};
use reshuffle_synth::literal_estimate;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

/// One synthesized path of a row: literals, cycle time, state signals
/// inserted, serializing moves applied.
struct Path {
    lits: u32,
    cycle: f64,
    inserted: usize,
    moves: usize,
}

/// Measures one synthesized path under the same delay model the
/// reduction search optimized for, so `cycle'` reports the optimizer's
/// own objective.
fn path_of(s: &Synthesis, ropts: &ReduceOptions) -> Result<Path, Box<dyn std::error::Error>> {
    let delays = DelayModel::uniform(&s.stg, ropts.input_delay, ropts.gate_delay);
    let run = simulate(&s.stg, &delays, &SimOptions::default())?;
    Ok(Path {
        lits: literal_estimate(&s.sg),
        cycle: run.period,
        inserted: s.inserted.len(),
        moves: s.moves.len(),
    })
}

fn main() {
    println!(
        "{:<8} {:>6} {:>4} | {:>5} {:>6} {:>5} | {:>5} {:>6} {:>5} {:>6}",
        "model", "states", "csc", "lits", "cycle", "sig+", "lits'", "cycle'", "sig+'", "moves"
    );
    let mut failures = 0usize;
    let ropts = ReduceOptions::default();
    for (name, src) in examples::ALL {
        let row = (|| -> Result<String, Box<dyn std::error::Error>> {
            let spec = parse_g(src)?;
            let spec_sg = build_state_graph(&spec)?;
            let states = spec_sg.num_states();
            let conflicts = analyze_csc(&spec_sg).num_csc_conflicts();

            let original = synthesize_stg_from(&spec, spec_sg.clone(), &PipelineOptions::default())
                .map_err(Box::<dyn std::error::Error>::from)
                .and_then(|s| path_of(&s, &ropts));
            let reduced_opts = PipelineOptions {
                reduce: Some(ropts.clone()),
                ..Default::default()
            };
            let reduced = synthesize_stg_from(&spec, spec_sg, &reduced_opts)
                .map_err(Box::<dyn std::error::Error>::from)
                .and_then(|s| path_of(&s, &ropts))?;

            let orig_cols = match &original {
                Ok(p) => format!("{:>5} {:>6.1} {:>5}", p.lits, p.cycle, p.inserted),
                Err(_) => format!("{:>5} {:>6} {:>5}", "-", "-", "-"),
            };
            Ok(format!(
                "{:<8} {:>6} {:>4} | {} | {:>5} {:>6.1} {:>5} {:>6}",
                name,
                states,
                conflicts,
                orig_cols,
                reduced.lits,
                reduced.cycle,
                reduced.inserted,
                reduced.moves,
            ))
        })();
        match row {
            Ok(r) => println!("{r}"),
            Err(e) => {
                failures += 1;
                println!("{name:<8} FAILED: {e}");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
