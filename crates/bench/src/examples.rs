//! Shared `.g` sources for benches and the `tables` binary.
//!
//! The paper's Tables 1 and 2 report literal counts and cycle metrics
//! for a suite of controllers. The original benchmark `.g` files are
//! not redistributable here, so these are structurally faithful
//! stand-ins: a toggle, the xyz pipeline cell, a left/right handshake
//! coupler (Table 1 flavor), a deeper sequential pipeline standing in
//! for the MMU controller (Table 2 flavor), a fork/join PAR component
//! that exercises real concurrency in the state graph, and two
//! controllers with CSC conflicts born from concurrency — the Section 4
//! reduction targets: `mfig1` (insertion-unresolvable, reduction saves
//! it) and `creq` (both paths work; reduction is far cheaper) — and two
//! *partial* specifications for the Section 3 handshake-expansion
//! stage: `hslr` (a two-phase left/right channel pair) and `pcreq` (a
//! partial `creq` whose Req/Ack channel ordering is open).

/// Two-signal toggle: the smallest closed handshake.
pub const TOGGLE_G: &str = "\
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

/// The xyz example: a three-signal micropipeline cell with distinct
/// state codes (6 states, CSC-clean).
pub const XYZ_G: &str = "\
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
";

/// Left/right handshake coupler: a passive/active four-phase converter
/// (8 states, CSC-clean). Table 1 flavor.
pub const LR_G: &str = "\
.model lr
.inputs lr ra
.outputs la rr
.graph
lr+ rr+
rr+ ra+
ra+ la+
la+ lr-
lr- rr-
rr- ra-
ra- la-
la- lr+
.marking { <la-,lr+> }
.end
";

/// Five-signal sequential pipeline: a stand-in for the paper's MMU
/// controller at a similar state count (10 states, CSC-clean).
/// Table 2 flavor.
pub const MMU_G: &str = "\
.model mmu
.inputs x
.outputs y1 y2 y3 y4
.graph
x+ y1+
y1+ y2+
y2+ y3+
y3+ y4+
y4+ x-
x- y1-
y1- y2-
y2- y3-
y3- y4-
y4- x+
.marking { <y4-,x+> }
.end
";

/// Fork/join PAR component: `go` forks two concurrent request/ack
/// branches that rejoin on `done` — real concurrency diamonds in the
/// state graph.
pub const PAR_G: &str = "\
.model par
.inputs go a1 a2
.outputs r1 r2 done
.graph
go+ r1+ r2+
r1+ a1+
r2+ a2+
a1+ done+
a2+ done+
done+ go-
go- r1- r2-
r1- a1-
r2- a2-
a1- done-
a2- done-
done- go+
.marking { <done-,go+> }
.end
";

/// Mirror of the paper's Fig. 1 controller (`Req` driven by the
/// circuit): `Req+` runs concurrent with `Ack-`, and the interleaving
/// binary-codes two states identically — a CSC conflict that
/// state-signal insertion cannot resolve (the conflicting states are
/// separated by input events only) but concurrency reduction dissolves
/// by serializing `Req+` after `Ack-`.
pub const MFIG1_G: &str = "\
.model mfig1
.inputs Ack
.outputs Req
.graph
Ack+ Req-
Req- Req+ Ack-
Ack- Ack+
Req+ Ack+
.marking { <Req+,Ack+> <Ack-,Ack+> }
.end
";

/// Concurrent-request coupler: after `Req-`, the early request `Req+`
/// runs concurrent with the environment's `Ack-`/`Go-` tail, and one
/// interleaving collides codes with the `Go+` stage (one CSC conflict).
/// Both cures work here: insertion needs a state signal and ~11
/// literals; serializing `Req+` behind the tail needs none and ~2.
pub const CREQ_G: &str = "\
.model creq
.inputs Ack
.outputs Req Go
.graph
Ack+ Go+
Go+ Req-
Req- Req+ Ack-
Ack- Go-
Req+ Ack+
Go- Ack+
.marking { <Req+,Ack+> <Go-,Ack+> }
.end
";

/// Partial two-phase left/right coupler: the passive `lr`/`la` channel
/// and the active `rr`/`ra` channel are declared open (`.handshake`),
/// their events are toggles, and only the forward latency path
/// `lr -> rr -> ra -> la` is committed. Handshake expansion enumerates
/// where the four return-to-zero edges go; the eager extreme costs two
/// state signals and ~18 literals, while composing with the reduce
/// stage recovers the sequential converter at 2 literals (the `lr`
/// entry's logic).
pub const HSLR_G: &str = "\
.model hslr
.inputs lr ra
.outputs la rr
.handshake lr la
.handshake rr ra
.graph
lr~ rr~
rr~ ra~
ra~ la~
la~ lr~
.marking { <la~,lr~> }
.end
";

/// Partial `creq`: the `Req`/`Ack` channel ordering is open, and only
/// the committed behaviour remains — a `Go` pulse follows each
/// acknowledged request. The lattice ranges from the eager extreme
/// (return-to-zero concurrent with the pulse: 2 state signals, 16
/// literals) to reshufflings that serialize `Req-`/`Ack-` behind the
/// pulse edges; the ranked selection picks `Go+ -> Req-`, `Go- -> Ack-`
/// at one state signal and 6 literals.
pub const PCREQ_G: &str = "\
.model pcreq
.inputs Ack
.outputs Req Go
.handshake Req Ack
.graph
Req~ Ack~
Ack~ Go+
Go+ Go-
Go- Req~
.marking { <Go-,Req~> }
.end
";

/// Generates a synthetic fork/join controller with `n` parallel
/// request/acknowledge handshake stages: `go+` forks `n` concurrent
/// `r{i}+ -> a{i}+` branches rejoining on `done+`, then the mirrored
/// falling phase. The branches interleave freely, so the state count is
/// exponential in `n` — exactly `2 * 3^n + 2` states — which makes this
/// the scaling corpus for the parallel reachability bench (`par_reach`):
/// `n = 11` tops 350 000 states (≥ 10^5 at `n = 11`).
///
/// Supported range: `1 ..= 31` (2n + 2 signals must fit the 64-signal
/// state-code limit).
pub fn scaled_pipeline(n: usize) -> String {
    use std::fmt::Write as _;
    assert!((1..=31).contains(&n), "scaled_pipeline supports 1..=31");
    let mut g = String::new();
    let _ = writeln!(g, ".model scaled{n}");
    let _ = write!(g, ".inputs go");
    for i in 1..=n {
        let _ = write!(g, " a{i}");
    }
    let _ = writeln!(g);
    let _ = write!(g, ".outputs done");
    for i in 1..=n {
        let _ = write!(g, " r{i}");
    }
    let _ = writeln!(g);
    let _ = writeln!(g, ".graph");
    for i in 1..=n {
        let _ = writeln!(g, "go+ r{i}+");
        let _ = writeln!(g, "r{i}+ a{i}+");
        let _ = writeln!(g, "a{i}+ done+");
    }
    let _ = writeln!(g, "done+ go-");
    for i in 1..=n {
        let _ = writeln!(g, "go- r{i}-");
        let _ = writeln!(g, "r{i}- a{i}-");
        let _ = writeln!(g, "a{i}- done-");
    }
    let _ = writeln!(g, "done- go+");
    let _ = writeln!(g, ".marking {{ <done-,go+> }}");
    let _ = writeln!(g, ".end");
    g
}

/// [`scaled_pipeline`] with a *series dummy* padding every branch edge
/// `r{i} -> a{i}` (rising and falling): `.dummy pu{i}`/`pd{i}`
/// transitions that commit no signal edge but hold an extra
/// intermediate marking each, so every branch has four positions per
/// half-cycle instead of three and the raw state space grows from
/// `2 * 3^n + 2` to `2 * 4^n + 2` states — at `n = 12` that is 33.5
/// million raw states against the plain net's 1.06 million.
///
/// Structural pre-reduction ([`reshuffle_petri::prereduce`]) merges
/// every series dummy away and recovers the plain [`scaled_pipeline`]
/// net exactly (asserted by canonical fingerprint in the tests), which
/// makes this the pre-/post-reduction corpus of the `par_reach` bench
/// and the `tables --scaled` trajectory: the padded specification is
/// only buildable because the state space shrinks *before* the state
/// graph exists.
pub fn scaled_pipeline_padded(n: usize) -> String {
    use std::fmt::Write as _;
    assert!((1..=31).contains(&n), "scaled_pipeline supports 1..=31");
    let mut g = String::new();
    let _ = writeln!(g, ".model scaled{n}");
    let _ = write!(g, ".inputs go");
    for i in 1..=n {
        let _ = write!(g, " a{i}");
    }
    let _ = writeln!(g);
    let _ = write!(g, ".outputs done");
    for i in 1..=n {
        let _ = write!(g, " r{i}");
    }
    let _ = writeln!(g);
    let _ = write!(g, ".dummy");
    for i in 1..=n {
        let _ = write!(g, " pu{i} pd{i}");
    }
    let _ = writeln!(g);
    let _ = writeln!(g, ".graph");
    for i in 1..=n {
        let _ = writeln!(g, "go+ r{i}+");
        let _ = writeln!(g, "r{i}+ pu{i}");
        let _ = writeln!(g, "pu{i} a{i}+");
        let _ = writeln!(g, "a{i}+ done+");
    }
    let _ = writeln!(g, "done+ go-");
    for i in 1..=n {
        let _ = writeln!(g, "go- r{i}-");
        let _ = writeln!(g, "r{i}- pd{i}");
        let _ = writeln!(g, "pd{i} a{i}-");
        let _ = writeln!(g, "a{i}- done-");
    }
    let _ = writeln!(g, "done- go+");
    let _ = writeln!(g, ".marking {{ <done-,go+> }}");
    let _ = writeln!(g, ".end");
    g
}

/// Closed-form raw state count of [`scaled_pipeline`]`(n)`:
/// `2 * 3^n + 2` (each branch occupies one of three positions per
/// half-cycle, plus the two join states). Verified by exploration in
/// the tests.
pub fn scaled_pipeline_states(n: usize) -> usize {
    2 * 3usize.pow(n as u32) + 2
}

/// Closed-form raw state count of [`scaled_pipeline_padded`]`(n)`:
/// `2 * 4^n + 2` (the series dummy adds a fourth branch position per
/// half-cycle). This is the state space the padded net explodes to
/// *without* pre-reduction; with it, the build sees
/// [`scaled_pipeline_states`]`(n)`. Verified by exploration in the
/// tests.
pub fn scaled_pipeline_padded_states(n: usize) -> usize {
    2 * 4usize.pow(n as u32) + 2
}

/// Every example, with its name: the rows of the `tables` report.
pub const ALL: &[(&str, &str)] = &[
    ("toggle", TOGGLE_G),
    ("xyz", XYZ_G),
    ("lr", LR_G),
    ("mmu", MMU_G),
    ("par", PAR_G),
    ("mfig1", MFIG1_G),
    ("creq", CREQ_G),
    ("hslr", HSLR_G),
    ("pcreq", PCREQ_G),
];

/// The names of [`ALL`] entries that are *partial* specifications
/// (declared `.handshake` channels): they require the expansion stage
/// and error out of the default pipeline.
pub const PARTIAL: &[&str] = &["hslr", "pcreq"];

/// The names of [`ALL`] entries whose specifications have CSC conflicts
/// (every other example is CSC-clean as specified; partial entries are
/// judged on their two-phase unfolding).
pub const CSC_CONFLICTED: &[&str] = &["mfig1", "creq", "pcreq"];

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;
    use reshuffle_sg::{build_state_graph, csc::analyze_csc};

    #[test]
    fn all_examples_parse_build_and_code_as_documented() {
        for (name, src) in ALL {
            let stg = parse_g(src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
            assert_eq!(
                stg.is_partial(),
                PARTIAL.contains(name),
                "{name}: partiality does not match PARTIAL"
            );
            // Partial entries still build a (two-phase, parity-unfolded)
            // state graph for the spec columns of the report.
            let sg = build_state_graph(&stg)
                .unwrap_or_else(|e| panic!("{name}: state graph failed: {e}"));
            assert!(sg.num_states() >= 4, "{name}: degenerate state graph");
            assert_eq!(
                analyze_csc(&sg).has_csc(),
                !CSC_CONFLICTED.contains(name),
                "{name}: CSC status does not match CSC_CONFLICTED"
            );
        }
    }

    #[test]
    fn par_component_has_concurrency() {
        let sg = build_state_graph(&parse_g(PAR_G).unwrap()).unwrap();
        // Fork/join of two 2-event branches: strictly more states than
        // the longest single path through the net.
        assert!(sg.num_states() > 12, "got {}", sg.num_states());
    }

    #[test]
    fn scaled_pipeline_state_count_is_exponential() {
        for n in [1, 3, 5] {
            let stg = parse_g(&scaled_pipeline(n)).unwrap();
            let sg = build_state_graph(&stg).unwrap();
            // Each branch occupies one of 3 positions per half-cycle,
            // plus the two join states.
            assert_eq!(sg.num_states(), 2 * 3usize.pow(n as u32) + 2, "n={n}");
            assert!(sg.num_interned_markings() > 0);
        }
        // The bench's top size clears the 10^5-state bar by the formula
        // (asserted symbolically here; the bench builds it for real).
        assert!(2 * 3usize.pow(11) + 2 >= 100_000);
    }

    #[test]
    #[should_panic(expected = "1..=31")]
    fn scaled_pipeline_rejects_oversized_n() {
        let _ = scaled_pipeline(32);
    }

    #[test]
    fn padded_pipeline_explodes_raw_and_prereduces_to_the_plain_net() {
        use reshuffle_petri::{canonical_fingerprint, prereduce, ReachabilityGraph};
        for n in [1, 3, 5] {
            let plain = parse_g(&scaled_pipeline(n)).unwrap();
            let mut padded = parse_g(&scaled_pipeline_padded(n)).unwrap();
            // The raw (unreduced) padded net reaches 2*4^n + 2 states,
            // the plain net 2*3^n + 2 — both closed forms hold.
            let raw = ReachabilityGraph::explore_default(padded.net(), &padded.initial_marking())
                .unwrap();
            assert_eq!(raw.len(), scaled_pipeline_padded_states(n), "n={n}");
            let plain_rg =
                ReachabilityGraph::explore_default(plain.net(), &plain.initial_marking()).unwrap();
            assert_eq!(plain_rg.len(), scaled_pipeline_states(n), "n={n}");
            // Pre-reduction merges every series dummy and recovers the
            // plain net exactly, declaration-order-invariantly.
            let stats = prereduce(&mut padded).unwrap();
            assert_eq!(stats.dummy_merges, 2 * n, "n={n}");
            assert_eq!(
                canonical_fingerprint(&padded),
                canonical_fingerprint(&plain),
                "n={n}: pre-reduced padded net is not the plain net"
            );
        }
    }
}
