//! Minimal JSON support for machine-readable bench reports.
//!
//! The build container has no network access, so no serde: [`Json`] is
//! a small value tree with a spec-compliant renderer and a validating
//! recursive-descent [`parse`]r (used by the tests and the CI smoke
//! step to assert `tables --json` emits well-formed output). Numbers
//! are kept as `f64`, which covers every count and cycle metric the
//! reports emit.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A (finite) number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // JSON has no NaN/Inf; the reports never produce them.
                debug_assert!(n.is_finite(), "non-finite number in report");
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses JSON text into a [`Json`] value.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u escape: {e}"))?;
                        // Surrogate pairs are not needed by the reports.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("to\"gg\\le\n".to_string())),
            ("lits", Json::Num(11.0)),
            ("cycle", Json::Num(8.5)),
            ("ok", Json::Bool(true)),
            ("failed", Json::Null),
            (
                "modes",
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Num(-2.25),
                    Json::Str(String::new()),
                ]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        // Integral numbers render without a fraction.
        assert!(text.contains("\"lits\":11,"), "{text}");
        assert!(text.contains("\"cycle\":8.5"), "{text}");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().items().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().items().unwrap()[2].as_str(), Some("xA"));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
