//! Table 1 flavor: the left/right handshake coupler, end to end.

use reshuffle::{Pipeline, PipelineOptions, SynthCache};
use reshuffle_bench::{examples, report, BenchOptions};
use reshuffle_petri::parse_g;
use reshuffle_sg::build_state_graph;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

fn main() {
    let opts = BenchOptions::smoke_or_default();

    report("lr/parse", &opts, || parse_g(examples::LR_G).unwrap());

    let stg = parse_g(examples::LR_G).unwrap();
    report("lr/state_graph", &opts, || build_state_graph(&stg).unwrap());

    let popts = PipelineOptions::default();
    report("lr/synthesize", &opts, || {
        Pipeline::from_g(examples::LR_G)
            .unwrap()
            .run(&popts)
            .unwrap()
    });

    // The O(1) repeated-synthesis path: every iteration after the first
    // is served from the cache by spec fingerprint.
    let cache = SynthCache::new();
    report("lr/synthesize_cached", &opts, || {
        Pipeline::from_g(examples::LR_G)
            .unwrap()
            .with_cache(&cache)
            .run(&popts)
            .unwrap()
    });
    assert!(cache.hits() > 0, "cached bench never hit the cache");

    let delays = DelayModel::uniform(&stg, 2.0, 1.0);
    report("lr/timed_sim", &opts, || {
        simulate(&stg, &delays, &SimOptions::default()).unwrap()
    });
}
