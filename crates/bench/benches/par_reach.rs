//! Parallel reachability: the sharded-frontier state-graph build on
//! the scaled synthetic corpus (`examples::scaled_pipeline`), 1 thread
//! vs the machine's available parallelism.
//!
//! The top size exceeds 10^5 states, where the build is dominated by
//! frontier expansion and the sharded workers pay off; the output also
//! asserts that both thread counts produce fingerprint-identical
//! graphs (the determinism guarantee the golden corpus relies on).
//!
//! The hand-rolled measurement loop (instead of [`reshuffle_bench::report`])
//! keeps the large builds to a few runs each — calibrating an
//! iteration count against a second-long build would multiply the
//! bench's runtime for no extra signal.
//!
//! A second section reports what *structural pre-reduction* buys before
//! the build ever runs: the dummy-padded scaled variant's raw state
//! space (`2*4^n + 2`, explored for real) against the pre-reduced net's
//! (`2*3^n + 2`), with the places/transitions the pass removed.

use std::time::{Duration, Instant};

use reshuffle_bench::{examples, smoke_mode};
use reshuffle_petri::{parse_g, prereduce, ReachabilityGraph};
use reshuffle_sg::{build_state_graph_stats, BuildOptions};

/// Builds once at the given thread count, returning (wall, fingerprint,
/// states, peak frontier).
fn build_once(stg: &reshuffle_petri::Stg, threads: usize) -> (Duration, u64, usize, usize) {
    let opts = BuildOptions {
        threads,
        ..Default::default()
    };
    let t = Instant::now();
    let (sg, stats) = build_state_graph_stats(stg, &opts).unwrap();
    (
        t.elapsed(),
        sg.fingerprint(),
        stats.states,
        stats.peak_frontier,
    )
}

/// Best-of-`runs` wall time.
fn best(stg: &reshuffle_petri::Stg, threads: usize, runs: usize) -> (Duration, u64, usize, usize) {
    (0..runs)
        .map(|_| build_once(stg, threads))
        .min_by_key(|&(wall, _, _, _)| wall)
        .expect("at least one run")
}

fn main() {
    let (sizes, runs): (&[usize], usize) = if smoke_mode() {
        (&[4], 1)
    } else {
        (&[6, 9, 11], 2)
    };
    let auto = reshuffle_petri::sharded::effective_threads(0);
    println!("par_reach: 1 thread vs {auto} (available parallelism); best of {runs}");
    for &n in sizes {
        let stg = parse_g(&examples::scaled_pipeline(n)).unwrap();
        let (serial, fp1, states, frontier) = best(&stg, 1, runs);
        let (parallel, fp_auto, _, _) = best(&stg, 0, runs);
        assert_eq!(
            fp1, fp_auto,
            "thread count changed the graph at n={n} — determinism broken"
        );
        let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
        println!(
            "scaled_pipeline({n:>2})  {states:>7} states  peak frontier {frontier:>6}  t1 {serial:>10.2?}  t{auto} {parallel:>10.2?}  speedup {speedup:>5.2}x",
        );
    }

    // Pre-reduction section: raw exploration of the dummy-padded net vs
    // the same net after prereduce. The padded sizes stay one step
    // below the timing sizes — its raw space is 4^n, not 3^n.
    let pre_sizes: &[usize] = if smoke_mode() { &[3] } else { &[5, 7, 9] };
    println!("prereduce: dummy-padded scaled variant, raw vs pre-reduced exploration");
    for &n in pre_sizes {
        let padded = parse_g(&examples::scaled_pipeline_padded(n)).unwrap();
        let t_raw = Instant::now();
        let raw = ReachabilityGraph::explore_default(padded.net(), &padded.initial_marking())
            .unwrap()
            .len();
        let raw_wall = t_raw.elapsed();
        let mut reduced = padded.clone();
        let t_red = Instant::now();
        let stats = prereduce(&mut reduced).unwrap();
        let post = ReachabilityGraph::explore_default(reduced.net(), &reduced.initial_marking())
            .unwrap()
            .len();
        let red_wall = t_red.elapsed();
        assert_eq!(raw, examples::scaled_pipeline_padded_states(n), "n={n}");
        assert_eq!(post, examples::scaled_pipeline_states(n), "n={n}");
        println!(
            "scaled_padded({n:>2})    {raw:>7} -> {post:>7} states  (-{} places, -{} transitions)  raw {raw_wall:>9.2?}  reduced {red_wall:>9.2?}",
            stats.places_removed, stats.transitions_removed,
        );
    }
}
