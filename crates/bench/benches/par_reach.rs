//! Parallel reachability: the sharded-frontier state-graph build on
//! the scaled synthetic corpus (`examples::scaled_pipeline`), 1 thread
//! vs the machine's available parallelism.
//!
//! The top size exceeds 10^5 states, where the build is dominated by
//! frontier expansion and the sharded workers pay off; the output also
//! asserts that both thread counts produce fingerprint-identical
//! graphs (the determinism guarantee the golden corpus relies on).
//!
//! The hand-rolled measurement loop (instead of [`reshuffle_bench::report`])
//! keeps the large builds to a few runs each — calibrating an
//! iteration count against a second-long build would multiply the
//! bench's runtime for no extra signal.

use std::time::{Duration, Instant};

use reshuffle_bench::{examples, smoke_mode};
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph_stats, BuildOptions};

/// Builds once at the given thread count, returning (wall, fingerprint,
/// states).
fn build_once(stg: &reshuffle_petri::Stg, threads: usize) -> (Duration, u64, usize) {
    let opts = BuildOptions {
        threads,
        ..Default::default()
    };
    let t = Instant::now();
    let (sg, stats) = build_state_graph_stats(stg, &opts).unwrap();
    (t.elapsed(), sg.fingerprint(), stats.states)
}

/// Best-of-`runs` wall time.
fn best(stg: &reshuffle_petri::Stg, threads: usize, runs: usize) -> (Duration, u64, usize) {
    (0..runs)
        .map(|_| build_once(stg, threads))
        .min_by_key(|&(wall, _, _)| wall)
        .expect("at least one run")
}

fn main() {
    let (sizes, runs): (&[usize], usize) = if smoke_mode() {
        (&[4], 1)
    } else {
        (&[6, 9, 11], 2)
    };
    let auto = reshuffle_petri::sharded::effective_threads(0);
    println!("par_reach: 1 thread vs {auto} (available parallelism); best of {runs}");
    for &n in sizes {
        let stg = parse_g(&examples::scaled_pipeline(n)).unwrap();
        let (serial, fp1, states) = best(&stg, 1, runs);
        let (parallel, fp_auto, _) = best(&stg, 0, runs);
        assert_eq!(
            fp1, fp_auto,
            "thread count changed the graph at n={n} — determinism broken"
        );
        let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
        println!(
            "scaled_pipeline({n:>2})  {states:>7} states  t1 {serial:>10.2?}  t{auto} {parallel:>10.2?}  speedup {speedup:>5.2}x",
        );
    }
}
