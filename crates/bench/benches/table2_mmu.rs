//! Table 2 flavor: the MMU stand-in pipeline, end to end.

use reshuffle::{Pipeline, PipelineOptions};
use reshuffle_bench::{examples, report, BenchOptions};
use reshuffle_petri::parse_g;
use reshuffle_sg::build_state_graph;
use reshuffle_timing::{simulate, DelayModel, SimOptions};

fn main() {
    let opts = BenchOptions::smoke_or_default();

    report("mmu/parse", &opts, || parse_g(examples::MMU_G).unwrap());

    let stg = parse_g(examples::MMU_G).unwrap();
    report("mmu/state_graph", &opts, || {
        build_state_graph(&stg).unwrap()
    });

    let popts = PipelineOptions::default();
    report("mmu/synthesize", &opts, || {
        Pipeline::from_g(examples::MMU_G)
            .unwrap()
            .run(&popts)
            .unwrap()
    });

    let delays = DelayModel::uniform(&stg, 2.0, 1.0);
    report("mmu/timed_sim", &opts, || {
        simulate(&stg, &delays, &SimOptions::default()).unwrap()
    });
}
