//! The fork/join PAR component: concurrency diamonds in the state
//! graph, the workload concurrency reduction optimizes.

use reshuffle::{Pipeline, PipelineOptions, ReduceOptions};
use reshuffle_bench::{examples, report, BenchOptions};
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, conc};

fn main() {
    let opts = BenchOptions::smoke_or_default();

    let stg = parse_g(examples::PAR_G).unwrap();
    report("par/state_graph", &opts, || {
        build_state_graph(&stg).unwrap()
    });

    let sg = build_state_graph(&stg).unwrap();
    report("par/concurrent_pairs", &opts, || {
        conc::concurrent_pairs(&sg)
    });

    let popts = PipelineOptions::default();
    report("par/synthesize", &opts, || {
        Pipeline::from_g(examples::PAR_G)
            .unwrap()
            .run(&popts)
            .unwrap()
    });

    // The reduce stage dominates this workload; measure it through the
    // builder so the per-stage diagnostics overhead is in the loop.
    let reduce_opts = PipelineOptions::new().with_reduce(ReduceOptions::default());
    report("par/synthesize_reduced", &opts, || {
        Pipeline::from_g(examples::PAR_G)
            .unwrap()
            .run(&reduce_opts)
            .unwrap()
    });
}
