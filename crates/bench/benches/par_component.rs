//! The fork/join PAR component: concurrency diamonds in the state
//! graph, the workload concurrency reduction will later optimize.

use reshuffle::{synthesize_with, PipelineOptions};
use reshuffle_bench::{examples, report, BenchOptions};
use reshuffle_petri::parse_g;
use reshuffle_sg::{build_state_graph, conc};

fn main() {
    let opts = BenchOptions::smoke_or_default();

    let stg = parse_g(examples::PAR_G).unwrap();
    report("par/state_graph", &opts, || {
        build_state_graph(&stg).unwrap()
    });

    let sg = build_state_graph(&stg).unwrap();
    report("par/concurrent_pairs", &opts, || {
        conc::concurrent_pairs(&sg)
    });

    report("par/synthesize", &opts, || {
        synthesize_with(examples::PAR_G, &PipelineOptions::default()).unwrap()
    });
}
