fn main() {}
