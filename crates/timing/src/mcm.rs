//! Maximum cycle ratio for timed marked graphs.
//!
//! When every place of the STG has exactly one producer and one consumer
//! (a *marked graph* — true for choice-free handshake controllers), the
//! steady-state period equals the maximum over directed cycles of
//! (sum of transition delays) / (sum of initial tokens). We compute it
//! by binary search on λ with Bellman–Ford positive-cycle detection —
//! an independent cross-check of the event-driven simulator.

use reshuffle_petri::{Stg, TransitionId};

use crate::delay::DelayModel;

/// True if the underlying net is a marked graph (every place has exactly
/// one producer and one consumer).
pub fn is_marked_graph(stg: &Stg) -> bool {
    stg.places()
        .all(|p| stg.net().producers(p).len() == 1 && stg.net().consumers(p).len() == 1)
}

/// Computes the maximum cycle ratio (period, in time units) of a marked
/// graph, or `None` if the STG is not a marked graph or has no cycles
/// carrying tokens.
///
/// Edges: for each place `p` with producer `t` and consumer `u`, an edge
/// `t → u` with delay weight `d(u)` and token weight `m0(p)`.
pub fn max_cycle_ratio(stg: &Stg, delays: &DelayModel) -> Option<f64> {
    if !is_marked_graph(stg) {
        return None;
    }
    let n = stg.net().num_transitions();
    if n == 0 {
        return None;
    }
    let m0 = stg.initial_marking();
    let mut edges: Vec<(usize, usize, f64, f64)> = Vec::new(); // (from, to, delay, tokens)
    for p in stg.places() {
        let t = stg.net().producers(p)[0];
        let u = stg.net().consumers(p)[0];
        let d = delays.to_units(delays.ticks(u));
        let m = if m0.contains(p) { 1.0 } else { 0.0 };
        edges.push((t.index(), u.index(), d, m));
    }
    // A cycle with zero tokens would deadlock; with tokens, ratio =
    // Σd/Σm. Binary search λ: is there a cycle with Σ(d - λ·m) > 0?
    let hi0: f64 = edges.iter().map(|e| e.2).sum::<f64>().max(1.0);
    let (mut lo, mut hi) = (0.0f64, hi0);
    // Verify some token-carrying cycle exists: λ=∞ fails, λ=0 must have
    // a positive cycle (any cycle with positive delay).
    if !has_positive_cycle(n, &edges, 0.0) {
        return None;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if has_positive_cycle(n, &edges, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Bellman–Ford style detection of a cycle with positive total weight
/// `Σ(delay - λ·tokens)`.
fn has_positive_cycle(n: usize, edges: &[(usize, usize, f64, f64)], lambda: f64) -> bool {
    // Longest-path relaxation; if it still relaxes after n rounds there
    // is a positive cycle.
    let mut dist = vec![0.0f64; n];
    for round in 0..=n {
        let mut changed = false;
        for &(a, b, d, m) in edges {
            let w = d - lambda * m;
            if dist[a] + w > dist[b] + 1e-12 {
                dist[b] = dist[a] + w;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true;
        }
    }
    false
}

/// Convenience: period from the analytic bound when the STG is a marked
/// graph, cross-checkable with [`crate::simulate`].
pub fn period_if_marked_graph(stg: &Stg, delays: &DelayModel) -> Option<f64> {
    max_cycle_ratio(stg, delays)
}

/// The critical transitions: events on some cycle achieving the maximum
/// ratio (within tolerance). Returns an empty vector for non-marked
/// graphs.
pub fn critical_transitions(stg: &Stg, delays: &DelayModel) -> Vec<TransitionId> {
    let Some(lambda) = max_cycle_ratio(stg, delays) else {
        return Vec::new();
    };
    // Edges with reduced weight ≈ 0 participate in critical cycles;
    // collect transitions on cycles of the tight subgraph.
    let n = stg.net().num_transitions();
    let m0 = stg.initial_marking();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Recompute potentials via many relaxation rounds at λ slightly
    // above the optimum so no positive cycle exists.
    let mut dist = vec![0.0f64; n];
    let edges: Vec<(usize, usize, f64)> = stg
        .places()
        .map(|p| {
            let t = stg.net().producers(p)[0].index();
            let u = stg.net().consumers(p)[0];
            let d = delays.to_units(delays.ticks(u));
            let m = if m0.contains(p) { 1.0 } else { 0.0 };
            (t, u.index(), d - (lambda + 1e-9) * m)
        })
        .collect();
    for _ in 0..=n {
        for &(a, b, w) in &edges {
            if dist[a] + w > dist[b] {
                dist[b] = dist[a] + w;
            }
        }
    }
    for &(a, b, w) in &edges {
        if (dist[a] + w - dist[b]).abs() < 1e-6 {
            adj[a].push(b);
        }
    }
    // Transitions on cycles of the tight graph: nodes reachable from
    // themselves.
    let mut out = Vec::new();
    for v in 0..n {
        if reaches(&adj, v, v) {
            out.push(TransitionId(v as u32));
        }
    }
    out
}

fn reaches(adj: &[Vec<usize>], from: usize, target: usize) -> bool {
    let mut seen = vec![false; adj.len()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if w == target {
                return true;
            }
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use reshuffle_petri::parse_g;

    const HANDSHAKE: &str = "\
.model hs
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn matches_simulation_on_handshake() {
        let stg = parse_g(HANDSHAKE).unwrap();
        assert!(is_marked_graph(&stg));
        let delays = DelayModel::uniform(&stg, 2.0, 1.0);
        let mcr = max_cycle_ratio(&stg, &delays).unwrap();
        let run = simulate(&stg, &delays, &SimOptions::default()).unwrap();
        assert!(
            (mcr - run.period).abs() < 1e-6,
            "mcr={mcr} sim={}",
            run.period
        );
    }

    #[test]
    fn matches_simulation_on_fork() {
        let src = "\
.model fork
.inputs a
.outputs b c d
.graph
a+ b+ c+
c+ d+
b+ a-
d+ a-
a- b- c-
c- d-
b- a+
d- a+
.marking { <b-,a+> <d-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let delays = DelayModel::uniform(&stg, 2.0, 1.0);
        let mcr = max_cycle_ratio(&stg, &delays).unwrap();
        let run = simulate(&stg, &delays, &SimOptions::default()).unwrap();
        assert!((mcr - run.period).abs() < 1e-6);
        // Critical transitions: the longer branch a+ c+ d+ a- c- d-.
        let crit = critical_transitions(&stg, &delays);
        let names: Vec<&str> = crit.iter().map(|&t| stg.transition_name(t)).collect();
        assert!(names.contains(&"c+"), "{names:?}");
        assert!(names.contains(&"d+"), "{names:?}");
    }

    #[test]
    fn choice_nets_are_not_marked_graphs() {
        let src = "\
.model choice
.inputs a b
.graph
p0 a+ b+
a+ a-
b+ b-
a- p0
b- p0
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        assert!(!is_marked_graph(&stg));
        let delays = DelayModel::uniform(&stg, 1.0, 1.0);
        assert_eq!(max_cycle_ratio(&stg, &delays), None);
    }

    #[test]
    fn pipeline_two_tokens() {
        // Two tokens in a 4-stage ring halve the period.
        let src = "\
.model ring
.outputs w x y z
.graph
w+ x+
x+ y+
y+ z+
z+ w+
.marking { <w+,x+> <y+,z+> }
.end
";
        let stg = parse_g(src).unwrap();
        let delays = DelayModel::uniform(&stg, 2.0, 1.0);
        let mcr = max_cycle_ratio(&stg, &delays).unwrap();
        // 4 events of delay 1 over 2 tokens -> period 2.
        assert!((mcr - 2.0).abs() < 1e-6, "{mcr}");
    }
}
