//! Per-event delay models.
//!
//! The paper uses two models: Table 1/2 assign *input events* a delay of
//! 2 time units and all other events 1 unit; the PAR case study
//! (footnote 1) uses combinational gate = 1, sequential gate = 1.5 and
//! input event = 3, with an output event costing its mapped network
//! delay. Delays are stored as integer *ticks* (`ticks_per_unit` per
//! time unit) so the simulator stays exact.

use reshuffle_petri::{Stg, TransitionId};

/// Fixed per-transition delays in integer ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayModel {
    ticks: Vec<u64>,
    ticks_per_unit: u64,
}

impl DelayModel {
    /// Builds a model from a per-transition delay function in *time
    /// units*; delays are quantized to `ticks_per_unit` ticks per unit.
    ///
    /// # Panics
    ///
    /// Panics if a delay is negative or not representable on the tick
    /// grid (e.g. 1.5 with `ticks_per_unit = 1`).
    pub fn from_fn(
        stg: &Stg,
        ticks_per_unit: u64,
        f: impl Fn(&Stg, TransitionId) -> f64,
    ) -> DelayModel {
        assert!(ticks_per_unit > 0);
        let ticks = stg
            .transitions()
            .map(|t| {
                let d = f(stg, t);
                assert!(d >= 0.0, "negative delay for {}", stg.transition_name(t));
                let scaled = d * ticks_per_unit as f64;
                let r = scaled.round();
                assert!(
                    (scaled - r).abs() < 1e-9,
                    "delay {d} for {} not representable with {ticks_per_unit} ticks/unit",
                    stg.transition_name(t)
                );
                r as u64
            })
            .collect();
        DelayModel {
            ticks,
            ticks_per_unit,
        }
    }

    /// The Table 1/2 model: `input_delay` units for input-signal events,
    /// `other_delay` for everything else (outputs, internal, dummies).
    pub fn uniform(stg: &Stg, input_delay: f64, other_delay: f64) -> DelayModel {
        DelayModel::from_fn(stg, 2, |g, t| {
            if g.is_input_transition(t) {
                input_delay
            } else {
                other_delay
            }
        })
    }

    /// Delay of transition `t` in ticks.
    pub fn ticks(&self, t: TransitionId) -> u64 {
        self.ticks[t.index()]
    }

    /// Ticks per time unit (for converting back to units).
    pub fn ticks_per_unit(&self) -> u64 {
        self.ticks_per_unit
    }

    /// Converts ticks back to time units.
    pub fn to_units(&self, ticks: u64) -> f64 {
        ticks as f64 / self.ticks_per_unit as f64
    }

    /// Number of transitions covered.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True if the model covers no transitions.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;

    const SRC: &str = "\
.model m
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn uniform_model_classifies_events() {
        let stg = parse_g(SRC).unwrap();
        let m = DelayModel::uniform(&stg, 2.0, 1.0);
        let ap = stg.transition_by_label("a+").unwrap();
        let bp = stg.transition_by_label("b+").unwrap();
        assert_eq!(m.to_units(m.ticks(ap)), 2.0);
        assert_eq!(m.to_units(m.ticks(bp)), 1.0);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn half_unit_delays_representable() {
        let stg = parse_g(SRC).unwrap();
        let m = DelayModel::from_fn(
            &stg,
            2,
            |g, t| {
                if g.is_input_transition(t) {
                    3.0
                } else {
                    1.5
                }
            },
        );
        let bp = stg.transition_by_label("b+").unwrap();
        assert_eq!(m.ticks(bp), 3);
        assert_eq!(m.to_units(m.ticks(bp)), 1.5);
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn unrepresentable_delay_panics() {
        let stg = parse_g(SRC).unwrap();
        let _ = DelayModel::from_fn(&stg, 1, |_, _| 0.3);
    }
}
