//! Performance estimation for STGs: the `cr.cycle` and `inp.events`
//! columns of the paper's Tables 1 and 2.
//!
//! * [`DelayModel`] — fixed per-event delays (Table 1/2 model: inputs 2,
//!   others 1; PAR model: mapped network delays with comb = 1,
//!   seq = 1.5, inputs = 3);
//! * [`simulate`] — event-driven timed simulation with periodic
//!   steady-state detection and causal critical-cycle extraction;
//! * [`mcm`] — analytic maximum cycle ratio for marked graphs, used to
//!   cross-check the simulator.
//!
//! # Example
//!
//! ```
//! use reshuffle_petri::parse_g;
//! use reshuffle_timing::{simulate, DelayModel, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stg = parse_g(
//!     ".model hs\n.inputs a\n.outputs b\n.graph\n\
//!      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
//! )?;
//! let delays = DelayModel::uniform(&stg, 2.0, 1.0);
//! let run = simulate(&stg, &delays, &SimOptions::default())?;
//! assert_eq!(run.period, 6.0); // 2+1+2+1
//! assert_eq!(run.input_events_on_cycle, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod delay;
pub mod mcm;
mod sim;

pub use delay::DelayModel;
pub use mcm::{critical_transitions, is_marked_graph, max_cycle_ratio};
pub use sim::{simulate, SimOptions, TimedRun, TimingError};
