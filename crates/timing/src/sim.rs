//! Timed discrete-event simulation of STGs and critical-cycle analysis.
//!
//! Each transition fires a fixed delay after it becomes enabled (the
//! last of its input tokens arrives). With deterministic delays the
//! execution reaches a periodic steady state; the *critical cycle* is
//! recovered by tracing, from a firing deep in the steady state, the
//! chain of "last-arriving token" causes back one period. Its length is
//! the paper's `cr.cycle` column; the number of input events on it is
//! `inp.events`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use reshuffle_petri::{Marking, PetriError, Stg, TransitionId};

use crate::delay::DelayModel;

/// Errors from timed simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// The STG deadlocks (no enabled transitions).
    Deadlock {
        /// Time of the deadlock in ticks.
        at_ticks: u64,
    },
    /// No periodic steady state within the firing budget.
    NoPeriodicity {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The steady state has period zero (a zero-delay cycle).
    ZeroPeriod,
    /// Token-game error (unsafe net, etc.).
    Petri(PetriError),
    /// The causal trace failed to close a cycle (internal error).
    TraceFailed(String),
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Deadlock { at_ticks } => {
                write!(f, "STG deadlocks at t={at_ticks} ticks")
            }
            TimingError::NoPeriodicity { budget } => {
                write!(f, "no periodic steady state within {budget} firings")
            }
            TimingError::ZeroPeriod => write!(f, "zero-delay critical cycle"),
            TimingError::Petri(e) => write!(f, "{e}"),
            TimingError::TraceFailed(m) => write!(f, "critical-cycle trace failed: {m}"),
        }
    }
}

impl std::error::Error for TimingError {}

impl From<PetriError> for TimingError {
    fn from(e: PetriError) -> Self {
        TimingError::Petri(e)
    }
}

/// Result of a timed run.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Steady-state period in time units (the critical cycle length).
    pub period: f64,
    /// The events of one period of the critical cycle, in firing order.
    pub cycle: Vec<TransitionId>,
    /// Number of input-signal events on the critical cycle.
    pub input_events_on_cycle: usize,
    /// Total firings simulated before periodicity was detected.
    pub firings: usize,
}

/// Options for the simulator.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Maximum number of firings before giving up on periodicity.
    pub max_firings: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_firings: 200_000,
        }
    }
}

/// One firing record for causal tracing.
#[derive(Debug, Clone, Copy)]
struct Firing {
    transition: TransitionId,
    time: u64,
    /// Index of the firing that produced the last-arriving input token
    /// (`usize::MAX` for initially-marked enabling).
    cause: usize,
}

/// Simulates `stg` under `delays` until the configuration repeats.
///
/// # Errors
///
/// See [`TimingError`]; notably deadlocks and non-periodic behaviour
/// within the budget are reported rather than looping forever.
pub fn simulate(
    stg: &Stg,
    delays: &DelayModel,
    opts: &SimOptions,
) -> Result<TimedRun, TimingError> {
    let net = stg.net();
    let mut marking = stg.initial_marking();
    // Arrival time and producing firing of the token in each place.
    let n_places = net.num_places();
    let mut token_time: Vec<u64> = vec![0; n_places];
    let mut token_cause: Vec<usize> = vec![usize::MAX; n_places];

    // Scheduled firings: (fire_time, seq, transition, cause).
    // `scheduled[t]` guards against duplicates; entries are revalidated
    // against the current marking when popped (lazy cancellation).
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    let mut sched_cause: Vec<usize> = vec![usize::MAX; net.num_transitions()];
    let mut scheduled: Vec<bool> = vec![false; net.num_transitions()];
    let mut seq = 0u32;

    let schedule = |heap: &mut BinaryHeap<Reverse<(u64, u32, u32)>>,
                    scheduled: &mut Vec<bool>,
                    sched_cause: &mut Vec<usize>,
                    seq: &mut u32,
                    marking: &Marking,
                    token_time: &Vec<u64>,
                    token_cause: &Vec<usize>,
                    t: TransitionId| {
        if scheduled[t.index()] || !marking.enables(net, t) {
            return;
        }
        // Enabling time = max arrival over preset tokens.
        let mut when = 0u64;
        let mut cause = usize::MAX;
        for &p in net.preset(t) {
            let at = token_time[p.index()];
            if at >= when {
                when = at;
                cause = token_cause[p.index()];
            }
        }
        let fire_at = when + delays_ticks(delays, t);
        heap.push(Reverse((fire_at, *seq, t.0)));
        *seq += 1;
        scheduled[t.index()] = true;
        sched_cause[t.index()] = cause;
    };

    fn delays_ticks(d: &DelayModel, t: TransitionId) -> u64 {
        d.ticks(t)
    }

    for t in net.transitions() {
        schedule(
            &mut heap,
            &mut scheduled,
            &mut sched_cause,
            &mut seq,
            &marking,
            &token_time,
            &token_cause,
            t,
        );
    }

    let mut firings: Vec<Firing> = Vec::new();
    // Configuration hash -> (firing index, time) for periodicity.
    let mut seen: HashMap<u64, (usize, u64)> = HashMap::new();
    let mut now = 0u64;

    loop {
        if firings.len() >= opts.max_firings {
            return Err(TimingError::NoPeriodicity {
                budget: opts.max_firings,
            });
        }
        let Some(Reverse((fire_at, _, t_raw))) = heap.pop() else {
            return Err(TimingError::Deadlock { at_ticks: now });
        };
        let t = TransitionId(t_raw);
        scheduled[t.index()] = false;
        // Lazy cancellation: the marking may have changed since this
        // entry was scheduled (choice resolved another way).
        if !marking.enables(net, t) {
            continue;
        }
        // Recompute enabling; if a token arrived later than when this
        // entry was scheduled, reschedule at the correct time.
        let mut when = 0u64;
        let mut cause = usize::MAX;
        for &p in net.preset(t) {
            let at = token_time[p.index()];
            if at >= when {
                when = at;
                cause = token_cause[p.index()];
            }
        }
        let true_fire = when + delays.ticks(t);
        if true_fire > fire_at {
            heap.push(Reverse((true_fire, seq, t.0)));
            seq += 1;
            scheduled[t.index()] = true;
            sched_cause[t.index()] = cause;
            continue;
        }
        now = fire_at;
        let idx = firings.len();
        firings.push(Firing {
            transition: t,
            time: now,
            cause,
        });
        marking = marking.fire(net, t)?;
        for &p in net.postset(t) {
            token_time[p.index()] = now;
            token_cause[p.index()] = idx;
        }
        // Schedule newly enabled transitions: consumers of produced
        // tokens (and re-check consumers of consumed places are handled
        // lazily).
        for &p in net.postset(t) {
            for &u in net.consumers(p) {
                schedule(
                    &mut heap,
                    &mut scheduled,
                    &mut sched_cause,
                    &mut seq,
                    &marking,
                    &token_time,
                    &token_cause,
                    u,
                );
            }
        }

        // Periodicity: hash (marking, pending pattern relative to now).
        let cfg = config_hash(stg, &marking, &token_time, now, t);
        if let Some(&(prev_idx, prev_time)) = seen.get(&cfg) {
            let period_ticks = now - prev_time;
            if period_ticks == 0 {
                return Err(TimingError::ZeroPeriod);
            }
            return finish(stg, delays, &firings, prev_idx, idx, period_ticks);
        }
        seen.insert(cfg, (idx, now));
    }
}

/// Hash of the timing configuration after a firing: the marking, which
/// transition just fired, and the *relative ages* of all tokens.
fn config_hash(
    stg: &Stg,
    marking: &Marking,
    token_time: &[u64],
    now: u64,
    fired: TransitionId,
) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    fired.0.hash(&mut h);
    for p in stg.places() {
        let m = marking.contains(p);
        m.hash(&mut h);
        if m {
            (now - token_time[p.index()]).hash(&mut h);
        }
    }
    h.finish()
}

/// Builds the run report by tracing the causal chain back one period
/// from the recurrence point.
fn finish(
    stg: &Stg,
    delays: &DelayModel,
    firings: &[Firing],
    _prev_idx: usize,
    last_idx: usize,
    period_ticks: u64,
) -> Result<TimedRun, TimingError> {
    // Walk the cause chain backwards from the last firing, recording
    // positions; stop when the same transition recurs exactly one (or k)
    // period(s) earlier — that segment is the critical cycle.
    let mut chain: Vec<usize> = Vec::new();
    let mut pos_of: HashMap<(u32, u64), usize> = HashMap::new(); // (transition, time % period)
    let mut cur = last_idx;
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > firings.len() + 2 {
            return Err(TimingError::TraceFailed(
                "cause chain exceeded firing count".into(),
            ));
        }
        let f = firings[cur];
        let key = (f.transition.0, f.time % period_ticks);
        if let Some(&start) = pos_of.get(&key) {
            // chain[start..] is the cycle (walked backwards).
            let cycle_idx: Vec<usize> = chain[start..].to_vec();
            let k = {
                let t_late = firings[chain[start]].time;
                let t_early = f.time;
                let diff = t_late - t_early;
                if diff == 0 || diff % period_ticks != 0 {
                    return Err(TimingError::TraceFailed(format!(
                        "cycle closes over {diff} ticks, period {period_ticks}"
                    )));
                }
                diff / period_ticks
            };
            let mut events: Vec<TransitionId> = cycle_idx
                .iter()
                .rev()
                .map(|&i| firings[i].transition)
                .collect();
            // Keep exactly one period's worth when the chain wrapped k>1
            // periods (each period contributes the same event multiset).
            let per_period = events.len() / k as usize;
            events.truncate(per_period);
            let inputs = events
                .iter()
                .filter(|&&t| stg.is_input_transition(t))
                .count();
            return Ok(TimedRun {
                period: delays.to_units(period_ticks),
                cycle: events,
                input_events_on_cycle: inputs,
                firings: firings.len(),
            });
        }
        pos_of.insert(key, chain.len());
        chain.push(cur);
        if f.cause == usize::MAX {
            return Err(TimingError::TraceFailed(
                "cause chain reached the initial marking before closing a cycle".into(),
            ));
        }
        cur = f.cause;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshuffle_petri::parse_g;

    const HANDSHAKE: &str = "\
.model hs
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn sequential_handshake_period() {
        let stg = parse_g(HANDSHAKE).unwrap();
        let delays = DelayModel::uniform(&stg, 2.0, 1.0);
        let run = simulate(&stg, &delays, &SimOptions::default()).unwrap();
        // Cycle a+ b+ a- b-: 2+1+2+1 = 6 units, 2 input events.
        assert_eq!(run.period, 6.0);
        assert_eq!(run.input_events_on_cycle, 2);
        assert_eq!(run.cycle.len(), 4);
    }

    #[test]
    fn concurrent_branches_take_max() {
        // Fork into two parallel chains of different lengths, join.
        let src = "\
.model fork
.inputs a
.outputs b c d
.graph
a+ b+ c+
c+ d+
b+ a-
d+ a-
a- b- c-
c- d-
b- a+
d- a+
.marking { <b-,a+> <d-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let delays = DelayModel::uniform(&stg, 2.0, 1.0);
        let run = simulate(&stg, &delays, &SimOptions::default()).unwrap();
        // Upper path a+ b+ a- b-: 6; lower a+ c+ d+ a- c- d-: 8.
        // Critical cycle is the lower: 2+1+1+2+1+1 = 8, 2 inputs.
        assert_eq!(run.period, 8.0);
        assert_eq!(run.input_events_on_cycle, 2);
        assert_eq!(run.cycle.len(), 6);
    }

    #[test]
    fn zero_delay_outputs() {
        // Wire-implemented outputs (delay 0): only input delays count.
        let stg = parse_g(HANDSHAKE).unwrap();
        let delays = DelayModel::from_fn(
            &stg,
            2,
            |g, t| {
                if g.is_input_transition(t) {
                    2.0
                } else {
                    0.0
                }
            },
        );
        let run = simulate(&stg, &delays, &SimOptions::default()).unwrap();
        assert_eq!(run.period, 4.0);
        assert_eq!(run.input_events_on_cycle, 2);
    }

    #[test]
    fn deadlock_reported() {
        // One-shot pipeline: after a+ then b+ the net is stuck.
        let src = "\
.model dead
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ p1
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        let delays = DelayModel::uniform(&stg, 1.0, 1.0);
        let e = simulate(&stg, &delays, &SimOptions::default()).unwrap_err();
        assert!(matches!(e, TimingError::Deadlock { .. }), "{e}");
    }

    #[test]
    fn half_tick_delays() {
        let stg = parse_g(HANDSHAKE).unwrap();
        let delays = DelayModel::from_fn(
            &stg,
            2,
            |g, t| {
                if g.is_input_transition(t) {
                    3.0
                } else {
                    1.5
                }
            },
        );
        let run = simulate(&stg, &delays, &SimOptions::default()).unwrap();
        assert_eq!(run.period, 9.0);
    }
}
