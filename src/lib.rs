//! Workspace root crate for the `reshuffle` reproduction.
//!
//! This crate exists only to host cross-crate integration tests (in
//! `tests/`) and runnable examples (in `examples/`). All functionality
//! lives in the `reshuffle-*` member crates; start with the [`reshuffle`]
//! core crate.

pub use reshuffle as core_api;
